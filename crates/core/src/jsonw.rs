//! Hand-rolled JSON writing and minimal reading (no serde, per the
//! DESIGN.md §6 dependency policy).
//!
//! One escaping implementation serves every producer in the workspace:
//! the bench `BENCH_*.json` trajectory files, the `lcm-store` header
//! metadata, and the `lcm-serve` line-delimited wire protocol. The
//! reading half ([`parse`]) is a small recursive-descent parser for the
//! same subset those producers emit — objects, arrays, strings with the
//! escapes [`esc`] writes, `f64` numbers, booleans, and `null` — used by
//! the serve daemon to decode requests and by clients to decode
//! responses.

use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal
/// (quotes not included; see [`str_lit`]).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A complete JSON string literal: `"..."` with the contents escaped.
pub fn str_lit(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value compactly (no insignificant whitespace).
    /// Integers up to 2^53 render without a decimal point, so values
    /// written as integers round-trip textually.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing whitespace is permitted, trailing
/// content is an error.
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Our writers emit non-BMP characters as raw
                            // UTF-8, but other producers (python's
                            // json.dumps, browsers) encode them as UTF-16
                            // surrogate pairs: 😀 for U+1F600.
                            // Decode a high surrogate followed by \uDC00..
                            // DFFF into the supplementary-plane scalar;
                            // anything unpaired becomes the replacement
                            // character rather than an error.
                            let scalar = if (0xd800..0xdc00).contains(&hi) {
                                let lo_follows = self.bytes[self.pos..].starts_with(b"\\u");
                                if lo_follows {
                                    let mark = self.pos;
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                    } else {
                                        // Not a low surrogate: rewind so
                                        // the escape parses on its own.
                                        self.pos = mark;
                                        hi
                                    }
                                } else {
                                    hi
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself
    /// already consumed).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = &self.bytes[self.pos..self.pos + 4];
        let v = std::str::from_utf8(hex)
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g — π";
        let lit = str_lit(nasty);
        let parsed = parse(&lit).unwrap();
        assert_eq!(parsed, Json::Str(nasty.to_string()));
    }

    #[test]
    fn esc_matches_legacy_bench_behaviour() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("q\"q"), "q\\\"q");
        assert_eq!(esc("b\\s"), "b\\\\s");
        assert_eq!(esc("\n\t\r"), "\\n\\t\\r");
        assert_eq!(esc("\u{1f}"), "\\u001f");
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers_parse_exactly_in_integer_range() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_f64(), Some(-1.0));
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn render_round_trips() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x\ny"}"#).unwrap();
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Str("a\"b".into()).render(), r#""a\"b""#);
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn non_bmp_characters_round_trip_and_surrogate_pairs_decode() {
        // Our writers pass supplementary-plane characters through as raw
        // UTF-8 (esc only rewrites controls, quotes, and backslashes).
        let emoji = "grin \u{1f600} math \u{1d54a} flag \u{1f1e6}\u{1f1e6}";
        assert_eq!(esc(emoji), emoji);
        assert_eq!(parse(&str_lit(emoji)).unwrap(), Json::Str(emoji.into()));

        // Foreign producers encode the same characters as UTF-16
        // surrogate pairs; those must decode to the same scalar.
        let pair = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(pair).unwrap(), Json::Str("\u{1f600}".into()));
        // BMP escapes (no pairing involved) still work, case-insensitive.
        let bmp = "\"\\u00e9\\u00E9\"";
        assert_eq!(parse(bmp).unwrap(), Json::Str("éé".into()));
        // Unpaired surrogates are data errors, not panics: each becomes
        // U+FFFD and the rest of the string survives.
        assert_eq!(
            parse(r#""a\ud83db""#).unwrap(),
            Json::Str("a\u{fffd}b".into())
        );
        assert_eq!(
            parse(r#""\udc00x""#).unwrap(),
            Json::Str("\u{fffd}x".into())
        );
        // High surrogate followed by a non-surrogate escape: the second
        // escape must still parse independently.
        assert_eq!(
            parse(r#""\ud83dA""#).unwrap(),
            Json::Str("\u{fffd}A".into())
        );
        // Truncated pair tail is a syntax error.
        assert!(parse(r#""\ud83d\u12""#).is_err());
    }

    #[test]
    fn deeply_nested_arrays_stream_through_parse_and_render() {
        // The wire protocol and trace exporter build arrays element by
        // element; make sure nesting depth well past anything they emit
        // round-trips bit-exactly through the recursive parser/renderer.
        const DEPTH: usize = 200;
        let mut doc = String::new();
        for _ in 0..DEPTH {
            doc.push('[');
        }
        doc.push_str("\"leaf\"");
        for _ in 0..DEPTH {
            doc.push(']');
        }
        let v = parse(&doc).unwrap();
        let mut cur = &v;
        for _ in 0..DEPTH {
            let items = cur.as_arr().unwrap();
            assert_eq!(items.len(), 1);
            cur = &items[0];
        }
        assert_eq!(cur.as_str(), Some("leaf"));
        assert_eq!(v.render(), doc);

        // Wide arrays too: 10k heterogeneous elements.
        let wide = Json::Arr(
            (0..10_000)
                .map(|i| {
                    if i % 3 == 0 {
                        Json::Num(i as f64)
                    } else {
                        Json::Str(format!("s{i}"))
                    }
                })
                .collect(),
        );
        assert_eq!(parse(&wide.render()).unwrap(), wide);
    }

    #[test]
    fn strings_beyond_64kib_round_trip() {
        // Store headers can carry large metadata blobs; make sure the
        // byte-at-a-time string scanner has no length cliffs. Mix plain
        // ASCII, escapes, and multi-byte UTF-8 so every path runs.
        let unit = "0123456789 \"quoted\\slash\" tabs\there π≠😀 | ";
        let mut big = String::new();
        while big.len() <= 64 * 1024 {
            big.push_str(unit);
        }
        assert!(big.len() > 64 * 1024);
        let lit = str_lit(&big);
        assert_eq!(parse(&lit).unwrap(), Json::Str(big.clone()));
        // And embedded in an object, as the store writes it.
        let doc = format!("{{\"meta\":{lit}}}");
        assert_eq!(
            parse(&doc).unwrap().get("meta").unwrap().as_str(),
            Some(big.as_str())
        );
    }
}
