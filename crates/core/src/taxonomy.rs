//! The transmitter taxonomy of §3.2.4 (Table 1).
//!
//! | class | pattern |
//! |---|---|
//! | address (AT) | `transmit ─rfx→ receiver` |
//! | data (DT) | `access ─addr→ transmit ─rfx→ receiver` |
//! | control (CT) | `access ─ctrl→ transmit ─rfx→ receiver` |
//! | universal data (UDT) | `index ─addr→ access ─addr→ transmit ─rfx→ receiver` |
//! | universal control (UCT) | `index ─addr→ access ─ctrl→ transmit ─rfx→ receiver` |
//!
//! Severity partial order: `AT < CT < {DT, UCT} < UDT`.
//!
//! Following §5.3, an `addr` edge in these patterns is generalised to
//! `(data ; rf)* ; addr`: a read's value may be stored and re-loaded any
//! number of times before its use in an address computation.

use lcm_relalg::Relation;

use crate::event::{EventId, EventKind};
use crate::exec::Execution;

/// The class of a transmitter (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransmitterClass {
    /// Transmits a function of its own address operand.
    Address,
    /// Leaks the outcome of a branch on an access's return value.
    Control,
    /// Leaks a function of the data returned by its access instruction.
    Data,
    /// Control transmitter whose access is itself addr-steered.
    UniversalControl,
    /// Data transmitter whose access is itself addr-steered: can leak
    /// arbitrary memory.
    UniversalData,
}

impl TransmitterClass {
    /// Rank in the severity partial order (`AT`=0, `CT`=1, `DT`/`UCT`=2,
    /// `UDT`=3). `DT` and `UCT` are incomparable but share a rank.
    pub fn severity_rank(self) -> u8 {
        match self {
            TransmitterClass::Address => 0,
            TransmitterClass::Control => 1,
            TransmitterClass::Data | TransmitterClass::UniversalControl => 2,
            TransmitterClass::UniversalData => 3,
        }
    }

    /// Strict comparison in the paper's severity *partial* order; `None`
    /// for the incomparable pair `{DT, UCT}` and for equal classes.
    pub fn compare_severity(self, other: Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        if self == other {
            return Some(Ordering::Equal);
        }
        let (a, b) = (self.severity_rank(), other.severity_rank());
        if a == b {
            None // DT vs UCT
        } else {
            Some(a.cmp(&b))
        }
    }

    /// `true` for the universal classes (arbitrary-memory leakage).
    pub fn is_universal(self) -> bool {
        matches!(
            self,
            TransmitterClass::UniversalData | TransmitterClass::UniversalControl
        )
    }
}

impl std::fmt::Display for TransmitterClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TransmitterClass::Address => "AT",
            TransmitterClass::Control => "CT",
            TransmitterClass::Data => "DT",
            TransmitterClass::UniversalControl => "UCT",
            TransmitterClass::UniversalData => "UDT",
        };
        f.write_str(s)
    }
}

/// Which field of the accessed xstate a transmitter conveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmittedField {
    /// The address field (cache hit/miss channels): the common case.
    Address,
    /// The data field: silent-store style leakage (§4.2, Fig. 5a), where
    /// the optimization triggers on a *data* comparison.
    Data,
}

/// A classified transmitter instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmitter {
    /// The transmitting event (sources `rfx` into the receiver).
    pub event: EventId,
    /// Taxonomy class.
    pub class: TransmitterClass,
    /// Which xstate field is conveyed.
    pub field: TransmittedField,
    /// Whether the transmitter itself is transient.
    pub transient: bool,
    /// The receiver it transmits to.
    pub receiver: EventId,
    /// The access instruction (for DT/CT/UDT/UCT).
    pub access: Option<EventId>,
    /// Whether the access instruction is transient. The leakage scope of a
    /// universal transmitter with a *committed* access is restricted (§6.1).
    pub access_transient: bool,
    /// The index instruction (for UDT/UCT).
    pub index: Option<EventId>,
}

/// The generalised address-dependency relation `(data ; rf)* ; addr`
/// (§5.3).
pub fn generalized_addr(x: &Execution) -> Relation {
    let dr = x.data().compose(x.rf());
    dr.reflexive_transitive_closure().compose(x.addr())
}

/// Like [`generalized_addr`] but requiring the *final* step to be an
/// `addr_gep` dependency — used by PHT-style engines to filter benign
/// leaks where the attacker would have to control a base pointer (§5.2).
pub fn generalized_addr_gep(x: &Execution) -> Relation {
    let dr = x.data().compose(x.rf());
    dr.reflexive_transitive_closure().compose(x.addr_gep())
}

/// Classifies the transmitters that convey information to `receivers`,
/// yielding every (transmitter, class, access, index) instance of Table 1.
///
/// Classification keeps all derivable records (the paper reports e.g.
/// instruction 6 of Fig. 2a as simultaneously an AT, DT and candidate
/// UDT); use [`most_severe`] to reduce per event.
///
/// # Examples
///
/// ```
/// use lcm_core::exec::ExecutionBuilder;
/// use lcm_core::taxonomy::{classify, TransmitterClass};
///
/// let mut b = ExecutionBuilder::new();
/// let access = b.read("A");
/// let transmit = b.read("B");
/// b.po(access, transmit);
/// b.addr_gep(access, transmit);
/// let receiver = b.observe("B");
/// b.po(transmit, receiver);
/// b.rfx(transmit, receiver);
/// let x = b.build();
/// let ts = classify(&x, &[receiver]);
/// assert!(ts.iter().any(|t| t.event == transmit && t.class == TransmitterClass::Data));
/// ```
pub fn classify(x: &Execution, receivers: &[EventId]) -> Vec<Transmitter> {
    let gaddr = generalized_addr(x);
    let mut out = Vec::new();
    for &rec in receivers {
        for t in x.rfx().predecessors(rec.0) {
            let et = x.event(EventId(t));
            if et.kind() == EventKind::Init {
                continue; // ⊤ sourcing a probe is the expected cold case
            }
            let transient = et.is_transient();
            out.push(Transmitter {
                event: EventId(t),
                class: TransmitterClass::Address,
                field: TransmittedField::Address,
                transient,
                receiver: rec,
                access: None,
                access_transient: false,
                index: None,
            });
            // Data / universal-data chains.
            for acc in gaddr.predecessors(t) {
                let ea = x.event(EventId(acc));
                if !ea.kind().is_arch_read() && !ea.is_transient() {
                    continue;
                }
                out.push(Transmitter {
                    event: EventId(t),
                    class: TransmitterClass::Data,
                    field: TransmittedField::Address,
                    transient,
                    receiver: rec,
                    access: Some(EventId(acc)),
                    access_transient: ea.is_transient(),
                    index: None,
                });
                for idx in gaddr.predecessors(acc) {
                    out.push(Transmitter {
                        event: EventId(t),
                        class: TransmitterClass::UniversalData,
                        field: TransmittedField::Address,
                        transient,
                        receiver: rec,
                        access: Some(EventId(acc)),
                        access_transient: ea.is_transient(),
                        index: Some(EventId(idx)),
                    });
                }
            }
            // Control / universal-control chains.
            for acc in x.ctrl().predecessors(t) {
                let ea = x.event(EventId(acc));
                if !ea.kind().is_arch_read() {
                    continue;
                }
                out.push(Transmitter {
                    event: EventId(t),
                    class: TransmitterClass::Control,
                    field: TransmittedField::Address,
                    transient,
                    receiver: rec,
                    access: Some(EventId(acc)),
                    access_transient: ea.is_transient(),
                    index: None,
                });
                for idx in gaddr.predecessors(acc) {
                    out.push(Transmitter {
                        event: EventId(t),
                        class: TransmitterClass::UniversalControl,
                        field: TransmittedField::Address,
                        transient,
                        receiver: rec,
                        access: Some(EventId(acc)),
                        access_transient: ea.is_transient(),
                        index: Some(EventId(idx)),
                    });
                }
            }
        }
    }
    out
}

/// Reduces a transmitter list to the most severe record per transmitting
/// event (ties broken toward universal classes).
pub fn most_severe(ts: &[Transmitter]) -> Vec<Transmitter> {
    let mut best: std::collections::BTreeMap<EventId, &Transmitter> =
        std::collections::BTreeMap::new();
    for t in ts {
        best.entry(t.event)
            .and_modify(|cur| {
                if t.class.severity_rank() > cur.class.severity_rank() {
                    *cur = t;
                }
            })
            .or_insert(t);
    }
    best.into_values().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;

    #[test]
    fn severity_partial_order_matches_table_1() {
        use std::cmp::Ordering::*;
        use TransmitterClass::*;
        assert_eq!(Address.compare_severity(Control), Some(Less));
        assert_eq!(Control.compare_severity(Data), Some(Less));
        assert_eq!(Control.compare_severity(UniversalControl), Some(Less));
        assert_eq!(Data.compare_severity(UniversalData), Some(Less));
        assert_eq!(UniversalControl.compare_severity(UniversalData), Some(Less));
        assert_eq!(Data.compare_severity(UniversalControl), None);
        assert_eq!(UniversalData.compare_severity(Address), Some(Greater));
        assert_eq!(Data.compare_severity(Data), Some(Equal));
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(TransmitterClass::UniversalData.to_string(), "UDT");
        assert_eq!(TransmitterClass::Address.to_string(), "AT");
    }

    /// The Fig. 2a chain: R y -addr-> R A+r2 -addr-> R B+r4, each probed.
    fn spectre_chain() -> (Execution, EventId, EventId, EventId, Vec<EventId>) {
        let mut b = ExecutionBuilder::new();
        let e2 = b.read("y");
        let e5 = b.read("A+y");
        let e6 = b.read("B+x");
        b.po_chain(&[e2, e5, e6]);
        b.addr_gep(e2, e5);
        b.addr_gep(e5, e6);
        let o0 = b.observe("y");
        let o1 = b.observe("A+y");
        let o2 = b.observe("B+x");
        b.po_chain(&[e6, o0, o1, o2]);
        b.rfx(e2, o0);
        b.rfx(e5, o1);
        b.rfx(e6, o2);
        let x = b.build();
        (x, e2, e5, e6, vec![o0, o1, o2])
    }

    #[test]
    fn spectre_chain_classification_matches_paper() {
        let (x, e2, e5, e6, obs) = spectre_chain();
        let ts = classify(&x, &obs);
        let classes_of = |e: EventId| -> Vec<TransmitterClass> {
            let mut v: Vec<_> = ts
                .iter()
                .filter(|t| t.event == e)
                .map(|t| t.class)
                .collect();
            v.sort();
            v.dedup();
            v
        };
        // §3.2.4: 2, 5, 6 are ATs; 5 and 6 are DTs; 6 is a candidate UDT.
        assert_eq!(classes_of(e2), vec![TransmitterClass::Address]);
        assert_eq!(
            classes_of(e5),
            vec![TransmitterClass::Address, TransmitterClass::Data]
        );
        assert_eq!(
            classes_of(e6),
            vec![
                TransmitterClass::Address,
                TransmitterClass::Data,
                TransmitterClass::UniversalData
            ]
        );
        // The UDT record names 5 as access and 2 as index.
        let udt = ts
            .iter()
            .find(|t| t.event == e6 && t.class == TransmitterClass::UniversalData)
            .unwrap();
        assert_eq!(udt.access, Some(e5));
        assert_eq!(udt.index, Some(e2));
    }

    #[test]
    fn control_transmitter_classified() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("secret");
        let t = b.read("A");
        b.po(r, t);
        b.ctrl(r, t);
        let o = b.observe("A");
        b.po(t, o);
        b.rfx(t, o);
        let x = b.build();
        let ts = classify(&x, &[o]);
        assert!(ts.iter().any(|tr| tr.event == t
            && tr.class == TransmitterClass::Control
            && tr.access == Some(r)));
        assert!(!ts
            .iter()
            .any(|tr| tr.class == TransmitterClass::UniversalControl));
    }

    #[test]
    fn universal_control_needs_addr_into_access() {
        let mut b = ExecutionBuilder::new();
        let idx = b.read("p");
        let acc = b.read("A+p");
        let t = b.read("B");
        b.po_chain(&[idx, acc, t]);
        b.addr_gep(idx, acc);
        b.ctrl(acc, t);
        let o = b.observe("B");
        b.po(t, o);
        b.rfx(t, o);
        let x = b.build();
        let ts = classify(&x, &[o]);
        let uct = ts
            .iter()
            .find(|tr| tr.class == TransmitterClass::UniversalControl)
            .expect("UCT found");
        assert_eq!(uct.event, t);
        assert_eq!(uct.access, Some(acc));
        assert_eq!(uct.index, Some(idx));
    }

    #[test]
    fn generalized_addr_spans_store_reload() {
        // r -data-> w -rf-> r2 -addr-> t : gaddr(r, t) must hold.
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let w = b.write("spill");
        let r2 = b.read("spill");
        let t = b.read("A");
        b.po_chain(&[r, w, r2, t]);
        b.data(r, w);
        b.rf(w, r2);
        b.addr(r2, t);
        let x = b.build();
        let g = generalized_addr(&x);
        assert!(g.contains(r.0, t.0));
        assert!(g.contains(r2.0, t.0));
        // but gep-restricted variant excludes the non-gep final edge
        assert!(!generalized_addr_gep(&x).contains(r.0, t.0));
    }

    #[test]
    fn init_sources_are_not_transmitters() {
        let mut b = ExecutionBuilder::new();
        let o = b.observe("y");
        let x = b.build();
        assert!(classify(&x, &[o]).is_empty());
    }

    #[test]
    fn most_severe_keeps_one_record_per_event() {
        let (x, _, _, e6, obs) = spectre_chain();
        let all = classify(&x, &obs);
        let reduced = most_severe(&all);
        let e6_records: Vec<_> = reduced.iter().filter(|t| t.event == e6).collect();
        assert_eq!(e6_records.len(), 1);
        assert_eq!(e6_records[0].class, TransmitterClass::UniversalData);
    }
}
