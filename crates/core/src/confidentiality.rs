//! Confidentiality predicates (§3.2.2, §4.2).
//!
//! Just as a consistency predicate rules out illegal instantiations of
//! `com`, a confidentiality predicate rules out illegal instantiations of
//! `comx` for a specific hardware implementation. The paper's key example
//! (§4.2, Spectre v4): naively lifting TSO's `sc_per_loc` to
//! `sc_per_loc_x = acyclic(rfx ∪ cox ∪ frx ∪ tfo_loc)` would *forbid* store
//! forwarding of stale data, which real Intel parts exhibit — so an x86 LCM
//! must permit `frx ∪ tfo_loc` cycles.

use crate::event::{AccessMode, EventId, EventKind};
use crate::exec::Execution;

/// Why an execution is ruled out by a confidentiality predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfidentialityViolation {
    /// Name of the violated constraint.
    pub constraint: &'static str,
    /// Events witnessing the violation (a cycle, or the offending pair).
    pub witness: Vec<EventId>,
}

/// A confidentiality predicate: which microarchitectural witnesses a given
/// hardware implementation can produce.
pub trait ConfidentialityModel {
    /// Short model name.
    fn name(&self) -> &'static str;

    /// Checks the predicate.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint with witnessing events.
    fn check(&self, x: &Execution) -> Result<(), ConfidentialityViolation>;
}

fn check_no_silent_stores(x: &Execution) -> Result<(), ConfidentialityViolation> {
    for e in x.events() {
        if e.kind() == EventKind::Write && e.xmode() == Some(AccessMode::Read) {
            return Err(ConfidentialityViolation {
                constraint: "no_silent_stores",
                witness: vec![e.id()],
            });
        }
    }
    Ok(())
}

fn check_no_alias_prediction(x: &Execution) -> Result<(), ConfidentialityViolation> {
    // Without alias prediction, a read's xstate source must access the same
    // architectural address (⊤ always matches: it initialises the line).
    for (w, r) in x.rfx().pairs() {
        let (ew, er) = (x.event(EventId(w)), x.event(EventId(r)));
        if ew.kind() == EventKind::Init || er.kind() == EventKind::Observer {
            continue; // observers probe lines, not addresses
        }
        if ew.location() != er.location() {
            return Err(ConfidentialityViolation {
                constraint: "no_alias_prediction",
                witness: vec![EventId(w), EventId(r)],
            });
        }
    }
    Ok(())
}

fn check_acyclic_rfx_cox(x: &Execution) -> Result<(), ConfidentialityViolation> {
    match x.rfx().union(x.cox()).find_cycle() {
        None => Ok(()),
        Some(c) => Err(ConfidentialityViolation {
            constraint: "acyclic_rfx_cox",
            witness: c.into_iter().map(EventId).collect(),
        }),
    }
}

/// The LCM Clou hard-codes for Intel x86 (§5.2): write-allocate caches, no
/// silent stores, no alias prediction, `comx` otherwise unconstrained.
///
/// Notably this model **permits** `frx ∪ tfo_loc` cycles, so Spectre v4
/// executions (Fig. 4a) are possible microarchitectural behaviours.
///
/// # Examples
///
/// ```
/// use lcm_core::confidentiality::{ConfidentialityModel, X86Lcm};
/// use lcm_core::exec::ExecutionBuilder;
///
/// let mut b = ExecutionBuilder::new();
/// let w = b.silent_write("x"); // silent stores do not exist on x86
/// let x = b.build();
/// assert_eq!(X86Lcm.check(&x).unwrap_err().constraint, "no_silent_stores");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct X86Lcm;

impl ConfidentialityModel for X86Lcm {
    fn name(&self) -> &'static str {
        "x86-LCM"
    }

    fn check(&self, x: &Execution) -> Result<(), ConfidentialityViolation> {
        check_no_silent_stores(x)?;
        check_no_alias_prediction(x)?;
        check_acyclic_rfx_cox(x)
    }
}

/// The *naive* lift of TSO's `sc_per_loc` to xstate (§4.2):
/// `sc_per_loc_x = acyclic(rfx ∪ cox ∪ frx ∪ tfo_loc)`.
///
/// Too strong for real x86: it forbids the Spectre v4 execution of Fig. 4a,
/// which Intel processors exhibit. Kept as the paper keeps it — to
/// demonstrate why confidentiality predicates must be derived with care.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveTsoLift;

impl ConfidentialityModel for NaiveTsoLift {
    fn name(&self) -> &'static str {
        "naive-sc_per_loc_x"
    }

    fn check(&self, x: &Execution) -> Result<(), ConfidentialityViolation> {
        check_no_silent_stores(x)?;
        check_no_alias_prediction(x)?;
        let r = x.rfx().union(x.cox()).union(&x.frx()).union(&x.tfo_loc());
        match r.find_cycle() {
            None => Ok(()),
            Some(c) => Err(ConfidentialityViolation {
                constraint: "sc_per_loc_x",
                witness: c.into_iter().map(EventId).collect(),
            }),
        }
    }
}

/// An LCM for hardware implementing the silent-store optimization
/// (Fig. 5a): stores whose data matches memory may microarchitecturally
/// behave as reads. Alias prediction remains forbidden.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentStoreLcm;

impl ConfidentialityModel for SilentStoreLcm {
    fn name(&self) -> &'static str {
        "silent-store-LCM"
    }

    fn check(&self, x: &Execution) -> Result<(), ConfidentialityViolation> {
        check_no_alias_prediction(x)?;
        check_acyclic_rfx_cox(x)
    }
}

/// An LCM for hardware with predictive store forwarding / alias prediction
/// (Fig. 4b, Spectre-PSF): a load may forward from a store to a
/// *mismatching* address. Everything except `rfx ∪ cox` acyclicity is
/// permitted.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsfLcm;

impl ConfidentialityModel for PsfLcm {
    fn name(&self) -> &'static str {
        "psf-LCM"
    }

    fn check(&self, x: &Execution) -> Result<(), ConfidentialityViolation> {
        check_no_silent_stores(x)?;
        check_acyclic_rfx_cox(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;

    #[test]
    fn silent_store_rejected_by_x86_allowed_by_silent_lcm() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.silent_write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.rfx(w1, w2);
        let x = b.build();
        let v = X86Lcm.check(&x).unwrap_err();
        assert_eq!(v.constraint, "no_silent_stores");
        assert_eq!(v.witness, vec![w2]);
        assert!(SilentStoreLcm.check(&x).is_ok());
    }

    #[test]
    fn cross_address_rfx_rejected_without_alias_prediction() {
        // Two distinct locations sharing an xstate element (PSF-style alias
        // prediction): rfx across addresses.
        let mut b = ExecutionBuilder::new();
        let w = b.write("C0");
        let r = b.transient_read("Cy");
        b.po(w, r);
        let xs = b.xstate_of(w).unwrap();
        b.set_xstate(r, xs);
        b.rfx(w, r);
        let x = b.build();
        let v = X86Lcm.check(&x).unwrap_err();
        assert_eq!(v.constraint, "no_alias_prediction");
        assert!(PsfLcm.check(&x).is_ok());
    }

    #[test]
    fn store_forwarding_stale_read_permitted_by_x86_forbidden_by_naive_lift() {
        // Spectre v4 core shape (Fig. 4a): R y; W y; R_s y where the
        // transient read microarchitecturally reads *before* the write
        // (rfx from the first read's fill), yielding frx(r_s, w) while
        // tfo_loc(w, r_s): an frx ∪ tfo_loc cycle.
        let mut b = ExecutionBuilder::new();
        let r1 = b.read("y");
        let w = b.write("y");
        let rs = b.transient_read_hit("y");
        b.po(r1, w);
        b.tfo_chain(&[r1, w, rs]);
        b.rfx(r1, rs); // stale: reads r1's fill, bypassing w
        let x = b.build();
        assert!(X86Lcm.check(&x).is_ok(), "x86 LCM permits Spectre v4");
        let v = NaiveTsoLift.check(&x).unwrap_err();
        assert_eq!(v.constraint, "sc_per_loc_x");
    }

    #[test]
    fn rfx_cox_cycle_rejected_everywhere() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.cox(w1, w2);
        b.cox(w2, w1);
        let x = b.build();
        assert!(X86Lcm.check(&x).is_err());
        assert!(SilentStoreLcm.check(&x).is_err());
        assert!(PsfLcm.check(&x).is_err());
    }

    #[test]
    fn clean_execution_passes_all_models() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("a");
        let w = b.write("b");
        b.po(r, w);
        let x = b.build();
        assert!(X86Lcm.check(&x).is_ok());
        assert!(NaiveTsoLift.check(&x).is_ok());
        assert!(SilentStoreLcm.check(&x).is_ok());
        assert!(PsfLcm.check(&x).is_ok());
    }
}
