//! A cat-style specification language for consistency and confidentiality
//! predicates (**extension**).
//!
//! §5.2: "Future versions of Clou will be parameterizable, requiring an
//! MCM and LCM to be provided as inputs alongside a C program." This
//! module provides that input format: a small relational expression
//! language in the tradition of herd's *cat* files (Alglave et al.),
//! evaluated against an [`Execution`]'s named base relations.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! spec  := item ("&&" item)*
//! item  := clause | letdef
//! letdef:= "let" IDENT "=" expr            (a named definition, as in cat files)
//! clause:= ("acyclic" | "irreflexive" | "empty") "(" expr ")"
//! expr  := seq ("|" seq)* | seq ("&" seq)* | seq ("\" seq)*   (union/intersection/difference)
//! seq   := unary (";" unary)*                                  (relational join)
//! unary := atom postfix*          postfix: "+" (transitive closure),
//!                                          "*" (refl-transitive closure),
//!                                          "^-1" (transpose)
//! atom  := IDENT | "(" expr ")" | "0" (empty relation) | "id"
//! ```
//!
//! Base identifiers: `po`, `tfo`, `po_loc`, `tfo_loc`, `rf`, `rfi`, `rfe`,
//! `co`, `fr`, `com`, `rfx`, `cox`, `frx`, `comx`, `addr`, `addr_gep`,
//! `data`, `ctrl`, `dep`, `fence`, `id`, `0`.
//!
//! # Examples
//!
//! The TSO consistency predicate of §2.1.3, verbatim:
//!
//! ```
//! use lcm_core::cat::CatModel;
//! use lcm_core::exec::ExecutionBuilder;
//! use lcm_core::mcm::ConsistencyModel;
//!
//! let tso = CatModel::parse(
//!     "TSO",
//!     "acyclic(rf | co | fr | po_loc) && acyclic(rfe | co | fr | ppo_tso | fence)",
//! ).unwrap();
//! let mut b = ExecutionBuilder::new();
//! let r = b.read("x");
//! let w = b.write("y");
//! b.po(r, w);
//! assert!(tso.check(&b.build()).is_ok());
//! ```

use std::fmt;

use lcm_relalg::Relation;

use crate::exec::Execution;
use crate::mcm::{fence_relation, ConsistencyModel, ConsistencyViolation, Tso};
use crate::EventId;

/// Parse error for cat specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatError {
    /// Description.
    pub message: String,
    /// Byte offset of the problem.
    pub at: usize,
}

impl fmt::Display for CatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.at)
    }
}

impl std::error::Error for CatError {}

/// A relational expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    Base(String),
    Empty,
    Id,
    Union(Box<Expr>, Box<Expr>),
    Intersect(Box<Expr>, Box<Expr>),
    Difference(Box<Expr>, Box<Expr>),
    Seq(Box<Expr>, Box<Expr>),
    Transpose(Box<Expr>),
    Plus(Box<Expr>),
    Star(Box<Expr>),
}

/// One `predicate(expr)` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Clause {
    kind: ClauseKind,
    name: String,
    expr: Expr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseKind {
    Acyclic,
    Irreflexive,
    Empty,
}

/// A parsed cat-style model: named definitions plus a conjunction of
/// `acyclic` / `irreflexive` / `empty` clauses over relational
/// expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatModel {
    name: String,
    defs: Vec<(String, Expr)>,
    clauses: Vec<Clause>,
}

impl CatModel {
    /// Parses a specification.
    ///
    /// # Errors
    ///
    /// Returns a [`CatError`] with the byte offset of the first problem.
    pub fn parse(name: &str, spec: &str) -> Result<CatModel, CatError> {
        let mut p = Parser {
            src: spec.as_bytes(),
            pos: 0,
            defs: Vec::new(),
        };
        let mut clauses = Vec::new();
        loop {
            p.skip_ws();
            if p.peek_word("let") {
                p.parse_letdef()?;
            } else {
                clauses.push(p.parse_clause()?);
            }
            p.skip_ws();
            if p.eat("&&") {
                continue;
            }
            p.skip_ws();
            if p.pos == p.src.len() {
                break;
            }
            return Err(CatError {
                message: "expected `&&` or end".into(),
                at: p.pos,
            });
        }
        if clauses.is_empty() {
            return Err(CatError {
                message: "a model needs at least one clause".into(),
                at: p.pos,
            });
        }
        Ok(CatModel {
            name: name.to_string(),
            defs: p.defs,
            clauses,
        })
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the model's clauses against an execution.
    ///
    /// # Errors
    ///
    /// Returns the first violated clause (with a witnessing cycle for
    /// `acyclic`/`irreflexive` clauses, or a related pair for `empty`).
    pub fn eval(&self, x: &Execution) -> Result<(), ConsistencyViolation> {
        // Evaluate definitions in order (later defs may use earlier ones).
        let mut env: Vec<(String, Relation)> = Vec::new();
        for (n, e) in &self.defs {
            let r = eval_expr_env(e, x, &env);
            env.push((n.clone(), r));
        }
        for c in &self.clauses {
            let r = eval_expr_env(&c.expr, x, &env);
            match c.kind {
                ClauseKind::Acyclic => {
                    if let Some(cycle) = r.find_cycle() {
                        return Err(ConsistencyViolation {
                            axiom: "cat:acyclic",
                            cycle: cycle.into_iter().map(EventId).collect(),
                        });
                    }
                }
                ClauseKind::Irreflexive => {
                    if let Some(e) = (0..r.universe()).find(|&i| r.contains(i, i)) {
                        return Err(ConsistencyViolation {
                            axiom: "cat:irreflexive",
                            cycle: vec![EventId(e)],
                        });
                    }
                }
                ClauseKind::Empty => {
                    if let Some((a, b)) = r.pairs().next() {
                        return Err(ConsistencyViolation {
                            axiom: "cat:empty",
                            cycle: vec![EventId(a), EventId(b)],
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl ConsistencyModel for CatModel {
    fn name(&self) -> &'static str {
        // ConsistencyModel::name returns &'static str; cat models are
        // dynamic, so expose the generic tag (Display gives the real name).
        "cat"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        // A cat model does not distinguish a ppo; expose po.
        x.po().clone()
    }

    fn check(&self, x: &Execution) -> Result<(), ConsistencyViolation> {
        self.eval(x)
    }
}

impl fmt::Display for CatModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cat model `{}` ({} clauses)",
            self.name,
            self.clauses.len()
        )
    }
}

fn base_relation(name: &str, x: &Execution) -> Option<Relation> {
    Some(match name {
        "po" => x.po().clone(),
        "tfo" => x.tfo().clone(),
        "po_loc" => x.po_loc(),
        "tfo_loc" => x.tfo_loc(),
        "rf" => x.rf().clone(),
        "rfi" => x.rfi(),
        "rfe" => x.rfe(),
        "co" => x.co().clone(),
        "fr" => x.fr(),
        "com" => x.com(),
        "rfx" => x.rfx().clone(),
        "cox" => x.cox().clone(),
        "frx" => x.frx(),
        "comx" => x.comx(),
        "addr" => x.addr().clone(),
        "addr_gep" => x.addr_gep().clone(),
        "data" => x.data().clone(),
        "ctrl" => x.ctrl().clone(),
        "dep" => x.dep(),
        "fence" => fence_relation(x),
        "ppo_tso" => Tso.ppo(x),
        _ => return None,
    })
}

fn eval_expr_env(e: &Expr, x: &Execution, env: &[(String, Relation)]) -> Relation {
    match e {
        Expr::Base(n) => env
            .iter()
            .rev()
            .find(|(name, _)| name == n)
            .map(|(_, r)| r.clone())
            .or_else(|| base_relation(n, x))
            .unwrap_or_else(|| Relation::empty(x.len())),
        Expr::Empty => Relation::empty(x.len()),
        Expr::Id => Relation::identity(x.len()),
        Expr::Union(a, b) => eval_expr_env(a, x, env).union(&eval_expr_env(b, x, env)),
        Expr::Intersect(a, b) => eval_expr_env(a, x, env).intersect(&eval_expr_env(b, x, env)),
        Expr::Difference(a, b) => eval_expr_env(a, x, env).difference(&eval_expr_env(b, x, env)),
        Expr::Seq(a, b) => eval_expr_env(a, x, env).compose(&eval_expr_env(b, x, env)),
        Expr::Transpose(a) => eval_expr_env(a, x, env).transpose(),
        Expr::Plus(a) => eval_expr_env(a, x, env).transitive_closure(),
        Expr::Star(a) => eval_expr_env(a, x, env).reflexive_transitive_closure(),
    }
}

/// Known base names, for parse-time validation.
const KNOWN: &[&str] = &[
    "po", "tfo", "po_loc", "tfo_loc", "rf", "rfi", "rfe", "co", "fr", "com", "rfx", "cox", "frx",
    "comx", "addr", "addr_gep", "data", "ctrl", "dep", "fence", "ppo_tso",
];

struct Parser<'s> {
    src: &'s [u8],
    pos: usize,
    defs: Vec<(String, Expr)>,
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CatError> {
        Err(CatError {
            message: msg.into(),
            at: self.pos,
        })
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    /// `true` if the next identifier is exactly `word` (without consuming).
    fn peek_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        let save = self.pos;
        let got = self.ident();
        self.pos = save;
        got.as_deref() == Some(word)
    }

    fn parse_letdef(&mut self) -> Result<(), CatError> {
        let _ = self.ident(); // "let"
        let at = self.pos;
        let Some(name) = self.ident() else {
            return self.err("expected definition name");
        };
        if KNOWN.contains(&name.as_str()) {
            return Err(CatError {
                message: format!("`{name}` shadows a base relation"),
                at,
            });
        }
        if !self.eat("=") {
            return self.err("expected `=`");
        }
        let e = self.parse_expr()?;
        self.defs.push((name, e));
        Ok(())
    }

    fn parse_clause(&mut self) -> Result<Clause, CatError> {
        self.skip_ws();
        let at = self.pos;
        let Some(head) = self.ident() else {
            return self.err("expected predicate name");
        };
        let kind = match head.as_str() {
            "acyclic" => ClauseKind::Acyclic,
            "irreflexive" => ClauseKind::Irreflexive,
            "empty" => ClauseKind::Empty,
            other => {
                return Err(CatError {
                    message: format!("unknown predicate `{other}`"),
                    at,
                })
            }
        };
        if !self.eat("(") {
            return self.err("expected `(`");
        }
        let expr = self.parse_expr()?;
        if !self.eat(")") {
            return self.err("expected `)`");
        }
        Ok(Clause {
            kind,
            name: head,
            expr,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, CatError> {
        let mut e = self.parse_seq()?;
        loop {
            self.skip_ws();
            if self.peek_byte() == Some(b'|') && !self.src[self.pos..].starts_with(b"||") {
                self.pos += 1;
                let r = self.parse_seq()?;
                e = Expr::Union(Box::new(e), Box::new(r));
            } else if self.peek_byte() == Some(b'&') && !self.src[self.pos..].starts_with(b"&&") {
                self.pos += 1;
                let r = self.parse_seq()?;
                e = Expr::Intersect(Box::new(e), Box::new(r));
            } else if self.peek_byte() == Some(b'\\') {
                self.pos += 1;
                let r = self.parse_seq()?;
                e = Expr::Difference(Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn peek_byte(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn parse_seq(&mut self) -> Result<Expr, CatError> {
        let mut e = self.parse_unary()?;
        while self.eat(";") {
            let r = self.parse_unary()?;
            e = Expr::Seq(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> Result<Expr, CatError> {
        let mut e = self.parse_atom()?;
        loop {
            self.skip_ws();
            if self.eat("^-1") {
                e = Expr::Transpose(Box::new(e));
            } else if self.peek_byte() == Some(b'+') {
                self.pos += 1;
                e = Expr::Plus(Box::new(e));
            } else if self.peek_byte() == Some(b'*') {
                self.pos += 1;
                e = Expr::Star(Box::new(e));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, CatError> {
        self.skip_ws();
        if self.eat("(") {
            let e = self.parse_expr()?;
            if !self.eat(")") {
                return self.err("expected `)`");
            }
            return Ok(e);
        }
        if self.peek_byte() == Some(b'0') {
            self.pos += 1;
            return Ok(Expr::Empty);
        }
        let at = self.pos;
        let Some(name) = self.ident() else {
            return self.err("expected relation name");
        };
        if name == "id" {
            return Ok(Expr::Id);
        }
        let defined = self.defs.iter().any(|(n, _)| *n == name);
        if !defined && !KNOWN.contains(&name.as_str()) {
            return Err(CatError {
                message: format!("unknown relation `{name}`"),
                at,
            });
        }
        Ok(Expr::Base(name))
    }
}

/// The paper's predicates as ready-made cat sources.
pub mod presets {
    /// `sc_per_loc` (§2.1.3).
    pub const SC_PER_LOC: &str = "acyclic(rf | co | fr | po_loc)";
    /// The x86-TSO consistency predicate (§2.1.3; `rmw_atomicity` is
    /// vacuous in this vocabulary).
    pub const TSO: &str =
        "acyclic(rf | co | fr | po_loc) && acyclic(rfe | co | fr | ppo_tso | fence)";
    /// Sequential consistency.
    pub const SC: &str = "acyclic(com | po)";
    /// The naive lift of `sc_per_loc` to xstate (§4.2) — too strong for
    /// real x86 (forbids Spectre v4).
    pub const SC_PER_LOC_X: &str = "acyclic(rfx | cox | frx | tfo_loc)";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;
    use crate::mcm::Sc;
    use crate::Execution;

    fn sb() -> Execution {
        let mut b = ExecutionBuilder::new();
        let w0 = b.write("x");
        let r0 = b.read("y");
        b.po(w0, r0);
        b.on_thread(1);
        let w1 = b.write("y");
        let r1 = b.read("x");
        b.po(w1, r1);
        b.build()
    }

    #[test]
    fn preset_tso_matches_builtin_on_sb() {
        let cat_tso = CatModel::parse("TSO", presets::TSO).unwrap();
        let cat_sc = CatModel::parse("SC", presets::SC).unwrap();
        let x = sb();
        assert!(cat_tso.check(&x).is_ok(), "SB allowed under cat-TSO");
        assert!(cat_sc.check(&x).is_err(), "SB forbidden under cat-SC");
        assert_eq!(crate::mcm::Tso.check(&x).is_ok(), cat_tso.check(&x).is_ok());
        assert_eq!(Sc.check(&x).is_ok(), cat_sc.check(&x).is_ok());
    }

    #[test]
    fn naive_lift_forbids_spectre_v4_shape() {
        // Same construction as the confidentiality module's test: stale
        // transient read with frx ∪ tfo_loc cycle.
        let mut b = ExecutionBuilder::new();
        let r1 = b.read("y");
        let w = b.write("y");
        let rs = b.transient_read_hit("y");
        b.po(r1, w);
        b.tfo_chain(&[r1, w, rs]);
        b.rfx(r1, rs);
        let x = b.build();
        let naive = CatModel::parse("naive", presets::SC_PER_LOC_X).unwrap();
        assert_eq!(naive.check(&x).unwrap_err().axiom, "cat:acyclic");
        // Dropping frx from the clause permits it.
        let relaxed = CatModel::parse("relaxed", "acyclic(rfx | cox)").unwrap();
        assert!(relaxed.check(&x).is_ok());
    }

    #[test]
    fn fr_is_definable_in_the_language() {
        // fr = rf^-1 ; co — check equivalence via empty((fr \ that) | (that \ fr)).
        let spec = "empty((fr \\ (rf^-1 ; co)) | ((rf^-1 ; co) \\ fr))";
        let m = CatModel::parse("frdef", spec).unwrap();
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let w = b.write("x");
        b.po(r, w);
        assert!(m.check(&b.build()).is_ok());
    }

    #[test]
    fn closure_and_star_postfixes() {
        let m = CatModel::parse("t", "irreflexive(po+) && acyclic((rf | co)+)").unwrap();
        assert!(m.check(&sb()).is_ok());
        // po* contains id, so irreflexive(po*) must fail on any nonempty
        // universe.
        let m2 = CatModel::parse("t2", "irreflexive(po*)").unwrap();
        assert!(m2.check(&sb()).is_err());
    }

    #[test]
    fn parse_errors_are_located() {
        let e = CatModel::parse("bad", "acyclic(nope)").unwrap_err();
        assert!(e.message.contains("unknown relation"));
        assert_eq!(e.at, 8);
        assert!(CatModel::parse("bad", "whatever(po)").is_err());
        assert!(CatModel::parse("bad", "acyclic(po").is_err());
        assert!(CatModel::parse("bad", "acyclic(po) extra").is_err());
    }

    #[test]
    fn empty_and_id_atoms() {
        let m = CatModel::parse("t", "empty(0) && empty(po & 0) && irreflexive(po ; 0*)").unwrap();
        // po ; 0* = po ; id+... 0* = id, so po;id = po — irreflexive holds.
        assert!(m.check(&sb()).is_ok());
    }

    #[test]
    fn intersection_and_difference() {
        let m = CatModel::parse("t", "empty(rf & co) && empty(po \\ tfo)").unwrap();
        assert!(m.check(&sb()).is_ok());
    }

    #[test]
    fn let_bindings_name_intermediate_relations() {
        // TSO written with cat-file-style definitions.
        let m = CatModel::parse(
            "TSO-lets",
            "let communication = rf | co | fr && \
             let hb = rfe | co | fr | ppo_tso | fence && \
             acyclic(communication | po_loc) && acyclic(hb)",
        )
        .unwrap();
        let x = sb();
        assert_eq!(m.check(&x).is_ok(), crate::mcm::Tso.check(&x).is_ok());
        // Later definitions can use earlier ones.
        let chained = CatModel::parse(
            "chained",
            "let a = rf | co && let b = a | fr && acyclic(b | po_loc)",
        )
        .unwrap();
        assert!(chained.check(&sb()).is_ok());
    }

    #[test]
    fn let_cannot_shadow_base_relations() {
        let e = CatModel::parse("bad", "let rf = co && acyclic(rf)").unwrap_err();
        assert!(e.message.contains("shadows"));
        // And a spec of only definitions is rejected.
        assert!(CatModel::parse("empty", "let x = rf").is_err());
    }

    #[test]
    fn confidentiality_style_specs_work_on_microarch_relations() {
        // An LCM clause over comx: no xstate communication cycles.
        let m = CatModel::parse("lcm", "acyclic(comx)").unwrap();
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let o = b.observe("x");
        b.po(r, o);
        b.rfx(r, o);
        assert!(m.check(&b.build()).is_ok());
    }
}
