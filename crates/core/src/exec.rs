//! Candidate executions and their builder (§2.1.2, §3.2).
//!
//! An [`Execution`] packages an event structure (events + `po`/`tfo` +
//! syntactic dependencies), an architectural execution witness (`rf`, `co`,
//! with `fr` derived), and a microarchitectural execution witness (`rfx`,
//! `cox`, with `frx` derived).

use std::collections::HashMap;

use lcm_relalg::dot::{DotGraph, EdgeStyle};
use lcm_relalg::Relation;

use crate::event::{AccessMode, Event, EventId, EventKind, Location, XState};

/// A complete candidate execution: event structure + architectural witness
/// + microarchitectural witness.
///
/// Construct with [`ExecutionBuilder`]. All relation accessors return
/// relations over the event-id universe; `po`, `tfo`, `co` and `cox` are
/// stored transitively closed.
#[derive(Debug, Clone)]
pub struct Execution {
    events: Vec<Event>,
    loc_names: Vec<String>,
    po: Relation,
    tfo: Relation,
    addr: Relation,
    addr_gep: Relation,
    data: Relation,
    ctrl: Relation,
    rf: Relation,
    co: Relation,
    rfx: Relation,
    cox: Relation,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, indexed by id.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.0]
    }

    /// The interned name of a location.
    pub fn location_name(&self, loc: Location) -> &str {
        &self.loc_names[loc.0 as usize]
    }

    /// Program order (transitive, committed events only).
    pub fn po(&self) -> &Relation {
        &self.po
    }

    /// Transient fetch order (transitive; `po ⊆ tfo`, §3.3).
    pub fn tfo(&self) -> &Relation {
        &self.tfo
    }

    /// Address dependencies (§2.1.3), including `addr_gep` ones.
    pub fn addr(&self) -> &Relation {
        &self.addr
    }

    /// The subset of [`Self::addr`] whose source value is an *index* added
    /// to a base pointer (`getelementptr`-style, §5.2).
    pub fn addr_gep(&self) -> &Relation {
        &self.addr_gep
    }

    /// Data dependencies.
    pub fn data(&self) -> &Relation {
        &self.data
    }

    /// Control dependencies.
    pub fn ctrl(&self) -> &Relation {
        &self.ctrl
    }

    /// `dep = addr ∪ data ∪ ctrl`.
    pub fn dep(&self) -> Relation {
        self.addr.union(&self.data).union(&self.ctrl)
    }

    /// Reads-from: (Write, Read) pairs, same location.
    pub fn rf(&self) -> &Relation {
        &self.rf
    }

    /// Coherence order: per-location total order on writes (transitive).
    pub fn co(&self) -> &Relation {
        &self.co
    }

    /// From-reads, derived as `fr = rf˘ ; co` (§2.1.2).
    pub fn fr(&self) -> Relation {
        self.rf.transpose().compose(&self.co)
    }

    /// Architectural communication `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.co).union(&self.fr())
    }

    /// Microarchitectural reads-from over xstate (§3.2.2).
    pub fn rfx(&self) -> &Relation {
        &self.rfx
    }

    /// Microarchitectural coherence over xstate (transitive).
    pub fn cox(&self) -> &Relation {
        &self.cox
    }

    /// Microarchitectural from-reads, derived as `frx = rfx˘ ; cox` minus
    /// identity (a read-modify-write's own fill is not a from-read of
    /// itself).
    pub fn frx(&self) -> Relation {
        self.rfx
            .transpose()
            .compose(&self.cox)
            .difference(&Relation::identity(self.len()))
    }

    /// Microarchitectural communication `comx = rfx ∪ cox ∪ frx`.
    pub fn comx(&self) -> Relation {
        self.rfx.union(&self.cox).union(&self.frx())
    }

    /// `po_loc`: the subset of `po` relating same-location memory events.
    pub fn po_loc(&self) -> Relation {
        self.same_loc_subset(&self.po)
    }

    /// `tfo_loc`: the subset of `tfo` relating same-location memory events
    /// (used by naive lifted predicates, §4.2).
    pub fn tfo_loc(&self) -> Relation {
        self.same_loc_subset(&self.tfo)
    }

    fn same_loc_subset(&self, r: &Relation) -> Relation {
        Relation::from_pairs(
            self.len(),
            r.pairs().filter(|&(a, b)| {
                let (ea, eb) = (&self.events[a], &self.events[b]);
                ea.kind.is_memory()
                    && eb.kind.is_memory()
                    && ea.location.is_some()
                    && ea.location == eb.location
            }),
        )
    }

    /// `rfi`: reads-from internal (same thread).
    pub fn rfi(&self) -> Relation {
        Relation::from_pairs(
            self.len(),
            self.rf
                .pairs()
                .filter(|&(a, b)| self.events[a].thread == self.events[b].thread),
        )
    }

    /// `rfe`: reads-from external (different threads).
    pub fn rfe(&self) -> Relation {
        Relation::from_pairs(
            self.len(),
            self.rf
                .pairs()
                .filter(|&(a, b)| self.events[a].thread != self.events[b].thread),
        )
    }

    /// Events accessing the given location.
    pub fn events_at(&self, loc: Location) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.location == Some(loc))
    }

    /// Events accessing the given xstate element.
    pub fn events_at_xstate(&self, xs: XState) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.xstate == Some(xs))
    }

    /// The ⊤-member initializing `loc`, if `loc` was ever used.
    pub fn init_of(&self, loc: Location) -> Option<EventId> {
        self.events
            .iter()
            .find(|e| e.kind == EventKind::Init && e.location == Some(loc))
            .map(|e| e.id)
    }

    /// `co` restricted to immediate (non-transitively-implied) pairs.
    pub fn co_immediate(&self) -> Relation {
        immediate_of(&self.co)
    }

    /// `cox` restricted to immediate pairs.
    pub fn cox_immediate(&self) -> Relation {
        immediate_of(&self.cox)
    }

    /// Checks structural well-formedness of both witnesses.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found:
    /// an `rf`/`rfx` target with several sources, mismatched
    /// locations/xstate, a non-total per-location `co`, or a non-total
    /// per-xstate `cox`.
    pub fn well_formed(&self) -> Result<(), String> {
        for e in &self.events {
            if e.kind.is_arch_read() {
                let sources: Vec<usize> = self.rf.predecessors(e.id.0).collect();
                if sources.len() > 1 {
                    return Err(format!("{} has {} rf sources", e.id, sources.len()));
                }
                if let Some(&w) = sources.first() {
                    if !self.events[w].kind.is_arch_write() {
                        return Err(format!(
                            "rf source {} of {} is not a write",
                            EventId(w),
                            e.id
                        ));
                    }
                    if self.events[w].location != e.location {
                        return Err(format!("rf {} -> {} crosses locations", EventId(w), e.id));
                    }
                }
            }
            if e.reads_xstate() {
                let sources: Vec<usize> = self.rfx.predecessors(e.id.0).collect();
                if sources.len() > 1 {
                    return Err(format!("{} has {} rfx sources", e.id, sources.len()));
                }
                if let Some(&w) = sources.first() {
                    if !self.events[w].writes_xstate() {
                        return Err(format!(
                            "rfx source {} of {} does not write xstate",
                            EventId(w),
                            e.id
                        ));
                    }
                    if self.events[w].xstate != e.xstate {
                        return Err(format!("rfx {} -> {} crosses xstate", EventId(w), e.id));
                    }
                }
            }
        }
        // co total per location over architectural writes.
        let mut by_loc: HashMap<Location, Vec<usize>> = HashMap::new();
        for e in &self.events {
            if e.kind.is_arch_write() {
                if let Some(l) = e.location {
                    by_loc.entry(l).or_default().push(e.id.0);
                }
            }
        }
        for (l, ws) in &by_loc {
            if !lcm_relalg::total_on(&self.co, ws) {
                return Err(format!(
                    "co is not a total order on writes to {}",
                    self.location_name(*l)
                ));
            }
        }
        // cox must at least be acyclic; totality is checked by
        // `well_formed_strict` (full microarchitectural witnesses only).
        if let Some(c) = self.cox.find_cycle() {
            return Err(format!("cox has a cycle through e{}", c[0]));
        }
        Ok(())
    }

    /// Like [`Self::well_formed`], but additionally requires `cox` to be a
    /// total order per xstate element over all xstate writers — the full
    /// microarchitectural witnesses that the litmus enumerator produces.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn well_formed_strict(&self) -> Result<(), String> {
        self.well_formed()?;
        let mut by_xs: HashMap<XState, Vec<usize>> = HashMap::new();
        for e in &self.events {
            if e.writes_xstate() {
                if let Some(x) = e.xstate {
                    by_xs.entry(x).or_default().push(e.id.0);
                }
            }
        }
        for (x, ws) in &by_xs {
            if !lcm_relalg::total_on(&self.cox, ws) {
                return Err(format!(
                    "cox is not a total order on writers of xstate {}",
                    x.0
                ));
            }
        }
        Ok(())
    }

    /// Renders the execution as a DOT graph in the style of the paper's
    /// figures. `culprits` (typically
    /// [`crate::Violation::culprit`] pairs) are drawn as dashed red edges.
    pub fn to_dot(&self, name: &str, culprits: &[(EventId, EventId)]) -> String {
        let labels = self.events.iter().map(|e| e.to_string()).collect();
        let mut g = DotGraph::new(name, labels);
        let n = self.len();
        let culprit_rel = Relation::from_pairs(n, culprits.iter().map(|&(a, b)| (a.0, b.0)));
        let po_im = immediate_of(&self.po);
        let tfo_im = immediate_of(&self.tfo).difference(&po_im);
        g.add_relation(po_im, EdgeStyle::solid("po", "black"));
        g.add_relation(tfo_im, EdgeStyle::solid("tfo", "gray40"));
        g.add_relation(self.addr.clone(), EdgeStyle::solid("addr", "gray55"));
        g.add_relation(self.data.clone(), EdgeStyle::solid("data", "gray55"));
        g.add_relation(self.ctrl.clone(), EdgeStyle::solid("ctrl", "gray70"));
        g.add_relation(
            self.rf.difference(&culprit_rel),
            EdgeStyle::solid("rf", "blue"),
        );
        g.add_relation(self.co_immediate(), EdgeStyle::solid("co", "purple"));
        g.add_relation(self.rfx.clone(), EdgeStyle::solid("rfx", "darkgreen"));
        g.add_relation(culprit_rel, EdgeStyle::dashed("rf (leak)", "red"));
        g.render()
    }
}

/// Immediate (transitive-reduction) pairs of a transitive relation.
fn immediate_of(r: &Relation) -> Relation {
    Relation::from_pairs(
        r.universe(),
        r.pairs()
            .filter(|&(a, b)| !r.successors(a).any(|m| m != b && r.contains(m, b))),
    )
}

/// Builds [`Execution`]s incrementally.
///
/// Locations are interned by name; each first use of a location creates its
/// ⊤ initialization event. Reads/observers without an explicit `rf` edge are
/// completed to read from ⊤; program writes are `co`-ordered after ⊤;
/// xstate readers without explicit `rfx` are completed from ⊤, and `cox` is
/// seeded with ⊤ before every xstate writer.
///
/// # Examples
///
/// ```
/// use lcm_core::exec::ExecutionBuilder;
///
/// let mut b = ExecutionBuilder::new();
/// let r = b.read("y");
/// let w = b.write("x");
/// b.po(r, w);
/// let exec = b.build();
/// assert!(exec.well_formed().is_ok());
/// // 2 inits + read + write:
/// assert_eq!(exec.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ExecutionBuilder {
    events: Vec<Event>,
    loc_names: Vec<String>,
    loc_map: HashMap<String, Location>,
    inits: HashMap<Location, EventId>,
    po_edges: Vec<(EventId, EventId)>,
    tfo_edges: Vec<(EventId, EventId)>,
    addr_edges: Vec<(EventId, EventId)>,
    addr_gep_edges: Vec<(EventId, EventId)>,
    data_edges: Vec<(EventId, EventId)>,
    ctrl_edges: Vec<(EventId, EventId)>,
    rf_edges: Vec<(EventId, EventId)>,
    co_edges: Vec<(EventId, EventId)>,
    rfx_edges: Vec<(EventId, EventId)>,
    cox_edges: Vec<(EventId, EventId)>,
    thread: usize,
}

impl ExecutionBuilder {
    /// Creates an empty builder (current thread 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a location name, creating its ⊤ initialization event on
    /// first use.
    pub fn loc(&mut self, name: &str) -> Location {
        if let Some(&l) = self.loc_map.get(name) {
            return l;
        }
        let l = Location(self.loc_names.len() as u32);
        self.loc_names.push(name.to_string());
        self.loc_map.insert(name.to_string(), l);
        let id = self.push(Event {
            id: EventId(0),
            kind: EventKind::Init,
            thread: 0,
            location: Some(l),
            xstate: Some(XState(l.0)),
            xmode: Some(AccessMode::ReadModifyWrite),
            transient: false,
            label: format!("⊤: init {name}"),
        });
        self.inits.insert(l, id);
        l
    }

    /// Switches the thread assigned to subsequently created events.
    pub fn on_thread(&mut self, t: usize) -> &mut Self {
        self.thread = t;
        self
    }

    fn push(&mut self, mut e: Event) -> EventId {
        let id = EventId(self.events.len());
        e.id = id;
        self.events.push(e);
        id
    }

    fn mem_event(
        &mut self,
        kind: EventKind,
        name: &str,
        xmode: AccessMode,
        transient: bool,
    ) -> EventId {
        let l = self.loc(name);
        let tag = match kind {
            EventKind::Read => "R",
            EventKind::Write => "W",
            EventKind::Observer => "⊥: probe",
            EventKind::Prefetch => "P",
            _ => "?",
        };
        let sub = if transient { "ₛ" } else { "" };
        let thread = self.thread;
        self.push(Event {
            id: EventId(0),
            kind,
            thread,
            location: Some(l),
            xstate: Some(XState(l.0)),
            xmode: Some(xmode),
            transient,
            label: format!("{tag}{sub} {name}"),
        })
    }

    /// A committed read that misses in the cache (xstate read-modify-write).
    pub fn read(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Read, name, AccessMode::ReadModifyWrite, false)
    }

    /// A committed read that hits (xstate read only).
    pub fn read_hit(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Read, name, AccessMode::Read, false)
    }

    /// A committed write (write-allocate: xstate read-modify-write).
    pub fn write(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Write, name, AccessMode::ReadModifyWrite, false)
    }

    /// A committed *silent* store (§4.2 Fig. 5a): architecturally a write,
    /// microarchitecturally only reads its xstate.
    pub fn silent_write(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Write, name, AccessMode::Read, false)
    }

    /// A transient (mis-speculated, later squashed) read; misses by default.
    pub fn transient_read(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Read, name, AccessMode::ReadModifyWrite, true)
    }

    /// A transient read that hits (xstate read only).
    pub fn transient_read_hit(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Read, name, AccessMode::Read, true)
    }

    /// A transient write (updates the LSQ/cache-line abstraction only).
    pub fn transient_write(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Write, name, AccessMode::ReadModifyWrite, true)
    }

    /// An observer (⊥) probing the xstate of `name` after completion (§3.2).
    ///
    /// Per the paper, ⊥ does **not** share memory with the program: the
    /// observer architecturally reads a private location (sourced by ⊤
    /// only), while its *xstate* is the probed line's. Its `rfx` source
    /// therefore reveals which instruction last filled the line.
    pub fn observe(&mut self, name: &str) -> EventId {
        let probed = self.loc(name);
        let priv_name = format!("⊥:{name}#{}", self.events.len());
        let o = self.mem_event(EventKind::Observer, &priv_name, AccessMode::Read, false);
        self.events[o.0].xstate = Some(XState(probed.0));
        self.events[o.0].label = format!("⊥: probe {name}");
        o
    }

    /// A hardware prefetch of `name`'s line (Fig. 5b): microarchitectural
    /// only — participates in `comx` but never in `po`/`com`.
    pub fn prefetch(&mut self, name: &str) -> EventId {
        self.mem_event(EventKind::Prefetch, name, AccessMode::ReadModifyWrite, true)
    }

    /// A committed conditional branch (source of `ctrl` dependencies).
    pub fn branch(&mut self) -> EventId {
        let thread = self.thread;
        self.push(Event {
            id: EventId(0),
            kind: EventKind::Branch,
            thread,
            location: None,
            xstate: None,
            xmode: None,
            transient: false,
            label: "BR".to_string(),
        })
    }

    /// A fence event.
    pub fn fence(&mut self) -> EventId {
        let thread = self.thread;
        self.push(Event {
            id: EventId(0),
            kind: EventKind::Fence,
            thread,
            location: None,
            xstate: None,
            xmode: None,
            transient: false,
            label: "FENCE".to_string(),
        })
    }

    /// The xstate currently assigned to an event (before build).
    pub fn xstate_of(&self, id: EventId) -> Option<XState> {
        self.events[id.0].xstate
    }

    /// Overrides an event's display label.
    pub fn set_label(&mut self, id: EventId, label: &str) -> &mut Self {
        self.events[id.0].label = label.to_string();
        self
    }

    /// Overrides an event's xstate element (e.g. to model cache-index
    /// collisions between distinct locations).
    pub fn set_xstate(&mut self, id: EventId, xs: XState) -> &mut Self {
        self.events[id.0].xstate = Some(xs);
        self
    }

    /// Overrides an event's xstate access mode.
    pub fn set_xmode(&mut self, id: EventId, m: AccessMode) -> &mut Self {
        self.events[id.0].xmode = Some(m);
        self
    }

    /// Adds a program-order edge (also implies `tfo`).
    pub fn po(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.po_edges.push((a, b));
        self
    }

    /// Chains program order through all given events.
    pub fn po_chain(&mut self, ids: &[EventId]) -> &mut Self {
        for w in ids.windows(2) {
            self.po_edges.push((w[0], w[1]));
        }
        self
    }

    /// Adds a transient-fetch-order edge (without program order).
    pub fn tfo(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.tfo_edges.push((a, b));
        self
    }

    /// Chains transient fetch order through all given events.
    pub fn tfo_chain(&mut self, ids: &[EventId]) -> &mut Self {
        for w in ids.windows(2) {
            self.tfo_edges.push((w[0], w[1]));
        }
        self
    }

    /// Adds an address dependency.
    pub fn addr(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.addr_edges.push((a, b));
        self
    }

    /// Adds a `getelementptr`-style address dependency (index into a known
    /// base, §5.2).
    pub fn addr_gep(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.addr_edges.push((a, b));
        self.addr_gep_edges.push((a, b));
        self
    }

    /// Adds a data dependency.
    pub fn data(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.data_edges.push((a, b));
        self
    }

    /// Adds a control dependency.
    pub fn ctrl(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.ctrl_edges.push((a, b));
        self
    }

    /// Adds an explicit reads-from edge (otherwise reads read from ⊤).
    pub fn rf(&mut self, w: EventId, r: EventId) -> &mut Self {
        self.rf_edges.push((w, r));
        self
    }

    /// Adds a coherence-order edge between program writes (⊤ is prepended
    /// automatically).
    pub fn co(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.co_edges.push((a, b));
        self
    }

    /// Adds an explicit microarchitectural reads-from edge.
    pub fn rfx(&mut self, w: EventId, r: EventId) -> &mut Self {
        self.rfx_edges.push((w, r));
        self
    }

    /// Adds an explicit microarchitectural coherence edge.
    pub fn cox(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.cox_edges.push((a, b));
        self
    }

    /// Finalizes the execution: closes `po`/`tfo`/`co`/`cox` transitively,
    /// completes missing `rf`/`rfx` sources from ⊤, and seeds `co`/`cox`
    /// with ⊤-before-everything edges.
    pub fn build(self) -> Execution {
        let n = self.events.len();
        let pairs =
            |v: &[(EventId, EventId)]| Relation::from_pairs(n, v.iter().map(|&(a, b)| (a.0, b.0)));
        let po = pairs(&self.po_edges).transitive_closure();
        let tfo = pairs(&self.po_edges)
            .union(&pairs(&self.tfo_edges))
            .transitive_closure();

        let mut rf = pairs(&self.rf_edges);
        for e in &self.events {
            if e.kind.is_arch_read() && rf.predecessors(e.id.0).next().is_none() {
                if let Some(l) = e.location {
                    let init = self.inits[&l];
                    rf.insert(init.0, e.id.0);
                }
            }
        }

        let mut co = pairs(&self.co_edges);
        for e in &self.events {
            if e.kind == EventKind::Write && !e.transient {
                if let Some(l) = e.location {
                    co.insert(self.inits[&l].0, e.id.0);
                }
            }
        }
        let co = co.transitive_closure();

        let mut rfx = pairs(&self.rfx_edges);
        for e in &self.events {
            if e.reads_xstate()
                && e.kind != EventKind::Init
                && rfx.predecessors(e.id.0).next().is_none()
            {
                if let Some(xs) = e.xstate {
                    if let Some(init) = self
                        .events
                        .iter()
                        .find(|c| c.kind == EventKind::Init && c.xstate == Some(xs))
                    {
                        rfx.insert(init.id.0, e.id.0);
                    }
                }
            }
        }

        let mut cox = pairs(&self.cox_edges);
        for e in &self.events {
            if e.writes_xstate() && e.kind != EventKind::Init {
                if let Some(xs) = e.xstate {
                    if let Some(init) = self
                        .events
                        .iter()
                        .find(|c| c.kind == EventKind::Init && c.xstate == Some(xs))
                    {
                        cox.insert(init.id.0, e.id.0);
                    }
                }
            }
        }
        let cox = cox.transitive_closure();

        Execution {
            events: self.events,
            loc_names: self.loc_names,
            po,
            tfo,
            addr: pairs(&self.addr_edges),
            addr_gep: pairs(&self.addr_gep_edges),
            data: pairs(&self.data_edges),
            ctrl: pairs(&self.ctrl_edges),
            rf,
            co,
            rfx,
            cox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_locations_once() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.read("y");
        let r2 = b.read("y");
        let exec = b.build();
        // one init + two reads
        assert_eq!(exec.len(), 3);
        assert_eq!(exec.event(r1).location(), exec.event(r2).location());
    }

    #[test]
    fn reads_default_to_init_rf() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let exec = b.build();
        let init = exec.init_of(exec.event(r).location().unwrap()).unwrap();
        assert!(exec.rf().contains(init.0, r.0));
        assert!(exec.rfx().contains(init.0, r.0));
    }

    #[test]
    fn explicit_rf_suppresses_init_completion() {
        let mut b = ExecutionBuilder::new();
        let w = b.write("x");
        let r = b.read("x");
        b.po(w, r);
        b.rf(w, r);
        b.rfx(w, r);
        let exec = b.build();
        let init = exec.init_of(exec.event(r).location().unwrap()).unwrap();
        assert!(exec.rf().contains(w.0, r.0));
        assert!(!exec.rf().contains(init.0, r.0));
        assert!(exec.well_formed().is_ok());
    }

    #[test]
    fn fr_derivation_matches_paper() {
        // w' -> r (rf), w' -> w (co)  =>  r -> w (fr)
        let mut b = ExecutionBuilder::new();
        let r = b.read("x"); // reads from init
        let w = b.write("x");
        b.po(r, w);
        let exec = b.build();
        assert!(exec.fr().contains(r.0, w.0));
        assert!(exec.com().contains(r.0, w.0));
    }

    #[test]
    fn frx_derivation() {
        let mut b = ExecutionBuilder::new();
        let r = b.read_hit("x"); // rfx from init
        let w = b.write("x"); // cox after init
        b.po(r, w);
        let exec = b.build();
        assert!(exec.frx().contains(r.0, w.0));
    }

    #[test]
    fn po_is_transitively_closed_and_subset_of_tfo() {
        let mut b = ExecutionBuilder::new();
        let a = b.read("p");
        let c = b.read("q");
        let d = b.read("r");
        b.po_chain(&[a, c, d]);
        let exec = b.build();
        assert!(exec.po().contains(a.0, d.0));
        assert!(exec.po().is_subset(exec.tfo()));
    }

    #[test]
    fn transient_events_in_tfo_not_po() {
        let mut b = ExecutionBuilder::new();
        let a = b.read("p");
        let t = b.transient_read("secret");
        b.tfo(a, t);
        let exec = b.build();
        assert!(exec.tfo().contains(a.0, t.0));
        assert!(!exec.po().contains(a.0, t.0));
        assert!(exec.event(t).is_transient());
    }

    #[test]
    fn po_loc_only_same_location_memory() {
        let mut b = ExecutionBuilder::new();
        let a = b.write("x");
        let c = b.read("y");
        let d = b.read("x");
        b.po_chain(&[a, c, d]);
        let exec = b.build();
        let pl = exec.po_loc();
        assert!(pl.contains(a.0, d.0));
        assert!(!pl.contains(a.0, c.0));
    }

    #[test]
    fn rfi_rfe_split_by_thread() {
        let mut b = ExecutionBuilder::new();
        let w = b.write("x");
        b.on_thread(1);
        let r = b.read("x");
        b.rf(w, r);
        let exec = b.build();
        assert!(exec.rfe().contains(w.0, r.0));
        assert!(exec.rfi().is_empty());
    }

    #[test]
    fn co_immediate_strips_transitive_pairs() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.co(w1, w2);
        let exec = b.build();
        let init = exec.init_of(exec.event(w1).location().unwrap()).unwrap();
        let imm = exec.co_immediate();
        assert!(imm.contains(init.0, w1.0));
        assert!(imm.contains(w1.0, w2.0));
        assert!(!imm.contains(init.0, w2.0));
        assert!(exec.co().contains(init.0, w2.0));
    }

    #[test]
    fn well_formed_rejects_double_rf() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        let r = b.read("x");
        b.rf(w1, r);
        b.rf(w2, r);
        b.co(w1, w2);
        let exec = b.build();
        assert!(exec.well_formed().unwrap_err().contains("rf sources"));
    }

    #[test]
    fn well_formed_rejects_untotal_co() {
        let mut b = ExecutionBuilder::new();
        let _w1 = b.write("x");
        let _w2 = b.write("x");
        // no co edge between w1 and w2 -> not total
        let exec = b.build();
        assert!(exec.well_formed().unwrap_err().contains("total order"));
    }

    #[test]
    fn observer_reads_from_top_only() {
        let mut b = ExecutionBuilder::new();
        let w = b.write("x");
        let o = b.observe("x");
        b.po(w, o);
        let exec = b.build();
        let init = exec.init_of(exec.event(o).location().unwrap()).unwrap();
        assert!(exec.rf().contains(init.0, o.0));
        assert!(!exec.rf().contains(w.0, o.0));
    }

    #[test]
    fn prefetch_has_no_arch_relations() {
        let mut b = ExecutionBuilder::new();
        let p = b.prefetch("x");
        let exec = b.build();
        assert!(exec.rf().predecessors(p.0).next().is_none());
        assert!(exec.event(p).reads_xstate());
        assert!(exec.rfx().predecessors(p.0).next().is_some());
    }

    #[test]
    fn silent_write_reads_xstate_only() {
        let mut b = ExecutionBuilder::new();
        let w = b.silent_write("x");
        let exec = b.build();
        assert!(exec.event(w).reads_xstate());
        assert!(!exec.event(w).writes_xstate());
        // architecturally still a write: in co after init
        let init = exec.init_of(exec.event(w).location().unwrap()).unwrap();
        assert!(exec.co().contains(init.0, w.0));
    }

    #[test]
    fn set_xstate_merges_cache_lines() {
        let mut b = ExecutionBuilder::new();
        let a = b.read("x");
        let c = b.read("y");
        let xs = b.xstate_of(a).unwrap();
        b.set_xstate(c, xs);
        let exec = b.build();
        assert_eq!(exec.event(a).xstate(), exec.event(c).xstate());
        // c now reads its xstate from x's init line.
        let init_x = exec.init_of(exec.event(a).location().unwrap()).unwrap();
        assert!(exec.rfx().contains(init_x.0, c.0));
    }

    #[test]
    fn events_at_location_and_xstate() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.read("x");
        let r2 = b.read("x");
        let w = b.write("y");
        b.po_chain(&[r1, r2, w]);
        let exec = b.build();
        let loc_x = exec.event(r1).location().unwrap();
        // init + two reads at x
        assert_eq!(exec.events_at(loc_x).count(), 3);
        let xs = exec.event(w).xstate().unwrap();
        assert_eq!(exec.events_at_xstate(xs).count(), 2); // init_y + w
    }

    #[test]
    fn cox_immediate_strips_transitive() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.cox(w1, w2);
        let exec = b.build();
        let init = exec.init_of(exec.event(w1).location().unwrap()).unwrap();
        let imm = exec.cox_immediate();
        assert!(imm.contains(init.0, w1.0));
        assert!(imm.contains(w1.0, w2.0));
        assert!(!imm.contains(init.0, w2.0));
    }

    #[test]
    fn event_display_uses_labels() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        b.set_label(r, "2: R y (RW s0)");
        let exec = b.build();
        assert_eq!(exec.event(r).to_string(), "2: R y (RW s0)");
        assert!(exec.event(r).to_string().contains("R y"));
    }

    #[test]
    fn location_names_resolve() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("my_loc");
        let exec = b.build();
        assert_eq!(
            exec.location_name(exec.event(r).location().unwrap()),
            "my_loc"
        );
    }

    #[test]
    fn dep_is_union_of_three() {
        let mut b = ExecutionBuilder::new();
        let a = b.read("p");
        let c = b.read("q");
        let d = b.write("r");
        b.po_chain(&[a, c, d]);
        b.addr(a, c).data(c, d).ctrl(a, d);
        let exec = b.build();
        let dep = exec.dep();
        assert!(dep.contains(a.0, c.0));
        assert!(dep.contains(c.0, d.0));
        assert!(dep.contains(a.0, d.0));
        assert_eq!(dep.len(), 3);
    }

    #[test]
    fn to_dot_contains_culprit_dashes() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let o = b.observe("y");
        b.po(r, o);
        let exec = b.build();
        let init = exec.init_of(exec.event(o).location().unwrap()).unwrap();
        let dot = exec.to_dot("t", &[(init, o)]);
        assert!(dot.contains("rf (leak)"));
        assert!(dot.contains("style=dashed"));
    }
}
