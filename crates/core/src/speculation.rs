//! The speculative semantics of LCMs (§3.3).
//!
//! The `tfo` (transient fetch order) relation totally orders all fetched
//! instructions per thread; `po ⊆ tfo`, and instructions in `tfo \ po` are
//! *transient*. This module names the speculation primitives the paper
//! models and carries the microarchitectural capacity parameters that bound
//! speculative windows in Clou-style analyses (§5, §6).

use std::fmt;

/// A hardware mechanism that opens a window of speculation (§3.3, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeculationPrimitive {
    /// Conditional-branch prediction: both branch paths are explored
    /// speculatively up to the speculation depth (Spectre v1 / v1.1).
    ConditionalBranch,
    /// Store-to-load forwarding with unresolved older store addresses: a
    /// load may read stale data from the correct address (Spectre v4).
    StoreForwarding,
    /// Alias prediction / predictive store forwarding: a load may forward
    /// from a store to a *mismatching* address (Spectre-PSF).
    AliasPrediction,
}

impl fmt::Display for SpeculationPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpeculationPrimitive::ConditionalBranch => "conditional branch (PHT)",
            SpeculationPrimitive::StoreForwarding => "store forwarding (STL)",
            SpeculationPrimitive::AliasPrediction => "alias prediction (PSF)",
        };
        f.write_str(s)
    }
}

/// Microarchitectural capacity parameters bounding speculation (§5, §6).
///
/// The paper's Clou experiments use a 250-entry ROB and 50-entry LSQ by
/// default; its speculation depth bounds how many instructions are
/// considered along each mis-speculated branch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// Reorder-buffer capacity: an upper bound on the distance (in fetched
    /// instructions) between any two simultaneously in-flight events.
    pub rob_size: usize,
    /// Load-store-queue capacity: bounds how far a load can bypass older
    /// stores.
    pub lsq_size: usize,
    /// Number of instructions explored along each mis-speculated path.
    pub speculation_depth: usize,
}

impl SpeculationConfig {
    /// The paper's default Clou configuration (ROB 250 / LSQ 50).
    pub fn new() -> Self {
        SpeculationConfig {
            rob_size: 250,
            lsq_size: 50,
            speculation_depth: 250,
        }
    }

    /// The configuration the paper uses for Binsec/Haunted comparisons
    /// (ROB 200 / LSQ 20).
    pub fn haunted() -> Self {
        SpeculationConfig {
            rob_size: 200,
            lsq_size: 20,
            speculation_depth: 200,
        }
    }

    /// Returns a copy with a different speculation depth.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.speculation_depth = depth;
        self
    }

    /// Returns a copy with a different ROB size.
    #[must_use]
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.rob_size = rob;
        self
    }

    /// Returns a copy with a different LSQ size.
    #[must_use]
    pub fn with_lsq(mut self, lsq: usize) -> Self {
        self.lsq_size = lsq;
        self
    }
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SpeculationConfig::default();
        assert_eq!(c.rob_size, 250);
        assert_eq!(c.lsq_size, 50);
        let bh = SpeculationConfig::haunted();
        assert_eq!(bh.rob_size, 200);
        assert_eq!(bh.lsq_size, 20);
    }

    #[test]
    fn with_builders_override_fields() {
        let c = SpeculationConfig::new()
            .with_depth(2)
            .with_rob(64)
            .with_lsq(8);
        assert_eq!(c.speculation_depth, 2);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.lsq_size, 8);
    }

    #[test]
    fn primitive_display() {
        assert!(SpeculationPrimitive::StoreForwarding
            .to_string()
            .contains("STL"));
    }
}
