//! Consistency predicates: axiomatic MCMs (§2.1.3).
//!
//! A consistency predicate renders candidate executions *consistent*
//! (architecturally allowed) or *inconsistent*. The set of consistent
//! candidate executions of a program is its architectural semantics (§2.2).

use lcm_relalg::Relation;

use crate::event::{EventId, EventKind};
use crate::exec::Execution;

/// Why an execution is inconsistent: the violated axiom and a witnessing
/// cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyViolation {
    /// Name of the violated axiom, e.g. `"sc_per_loc"`.
    pub axiom: &'static str,
    /// A cycle in the axiom's relation, as event ids.
    pub cycle: Vec<EventId>,
}

/// An axiomatic memory consistency model.
pub trait ConsistencyModel {
    /// Short model name, e.g. `"TSO"`.
    fn name(&self) -> &'static str;

    /// Preserved program order: the subset of `po` that the ISA guarantees
    /// is enforced from the perspective of all cores.
    fn ppo(&self, x: &Execution) -> Relation;

    /// Checks the consistency predicate.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom with a witnessing cycle.
    fn check(&self, x: &Execution) -> Result<(), ConsistencyViolation>;
}

/// `fence`: pairs of events ordered through an intervening fence event
/// (`a po fence po b`).
pub fn fence_relation(x: &Execution) -> Relation {
    let n = x.len();
    let mut before_fence = Relation::empty(n);
    let mut after_fence = Relation::empty(n);
    for e in x.events() {
        if e.kind() == EventKind::Fence {
            for p in x.po().predecessors(e.id().0) {
                before_fence.insert(p, e.id().0);
            }
            for s in x.po().successors(e.id().0) {
                after_fence.insert(e.id().0, s);
            }
        }
    }
    before_fence.compose(&after_fence)
}

/// `sc_per_loc ≜ acyclic(rf ∪ co ∪ fr ∪ po_loc)` (§2.1.3): coherence.
pub fn sc_per_loc(x: &Execution) -> Result<(), ConsistencyViolation> {
    let r = x.com().union(&x.po_loc());
    match r.find_cycle() {
        None => Ok(()),
        Some(c) => Err(ConsistencyViolation {
            axiom: "sc_per_loc",
            cycle: c.into_iter().map(EventId).collect(),
        }),
    }
}

/// Sequential consistency: `acyclic(com ∪ po)` (Lamport'79 in axiomatic
/// form).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sc;

impl ConsistencyModel for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn ppo(&self, x: &Execution) -> Relation {
        x.po().clone()
    }

    fn check(&self, x: &Execution) -> Result<(), ConsistencyViolation> {
        let r = x.com().union(x.po());
        match r.find_cycle() {
            None => Ok(()),
            Some(c) => Err(ConsistencyViolation {
                axiom: "sc",
                cycle: c.into_iter().map(EventId).collect(),
            }),
        }
    }
}

/// Intel x86 Total Store Order (§2.1.3).
///
/// The predicate is the conjunction of `sc_per_loc` and `causality`;
/// `rmw_atomicity` is vacuous here because the vocabulary has no
/// architectural read-modify-write events.
///
/// # Examples
///
/// Store buffering is TSO-consistent but not SC-consistent:
///
/// ```
/// use lcm_core::exec::ExecutionBuilder;
/// use lcm_core::mcm::{ConsistencyModel, Sc, Tso};
///
/// let mut b = ExecutionBuilder::new();
/// let w0 = b.write("x");
/// let r0 = b.read("y");
/// b.po(w0, r0);
/// b.on_thread(1);
/// let w1 = b.write("y");
/// let r1 = b.read("x");
/// b.po(w1, r1); // both reads default to reading from ⊤ (stale)
/// let x = b.build();
/// assert!(Tso.check(&x).is_ok());
/// assert!(Sc.check(&x).is_err());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Tso;

impl ConsistencyModel for Tso {
    fn name(&self) -> &'static str {
        "TSO"
    }

    /// TSO `ppo`: all `(Write, Write)` and `(Read, MemoryEvent)` pairs of
    /// `po` — i.e. everything except write-to-read ordering, which the
    /// store buffer relaxes.
    fn ppo(&self, x: &Execution) -> Relation {
        Relation::from_pairs(
            x.len(),
            x.po().pairs().filter(|&(a, b)| {
                let (ea, eb) = (x.event(EventId(a)), x.event(EventId(b)));
                if !ea.kind().is_memory() || !eb.kind().is_memory() {
                    return false;
                }
                let ww = ea.kind().is_arch_write() && eb.kind().is_arch_write();
                ww || ea.kind().is_arch_read()
            }),
        )
    }

    fn check(&self, x: &Execution) -> Result<(), ConsistencyViolation> {
        sc_per_loc(x)?;
        // causality ≜ acyclic(rfe ∪ co ∪ fr ∪ ppo ∪ fence)
        let r = x
            .rfe()
            .union(x.co())
            .union(&x.fr())
            .union(&self.ppo(x))
            .union(&fence_relation(x));
        match r.find_cycle() {
            None => Ok(()),
            Some(c) => Err(ConsistencyViolation {
                axiom: "causality",
                cycle: c.into_iter().map(EventId).collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;

    /// Classic store-buffering (SB): Wx=1; Ry || Wy=1; Rx with both reads
    /// returning the initial value. Allowed under TSO, forbidden under SC.
    fn store_buffering() -> Execution {
        let mut b = ExecutionBuilder::new();
        let w0 = b.write("x");
        let r0 = b.read("y");
        b.po(w0, r0);
        b.on_thread(1);
        let w1 = b.write("y");
        let r1 = b.read("x");
        b.po(w1, r1);
        // rf defaults: both reads from init -> fr(r0, w1), fr(r1, w0)
        b.build()
    }

    #[test]
    fn sb_allowed_on_tso_forbidden_on_sc() {
        let x = store_buffering();
        assert!(x.well_formed().is_ok());
        assert!(Tso.check(&x).is_ok());
        let v = Sc.check(&x).unwrap_err();
        assert_eq!(v.axiom, "sc");
        assert!(v.cycle.len() >= 2);
    }

    /// Message-passing (MP) with a stale read: Wx=1; Wy=1 || Ry(=1); Rx(=0).
    /// Forbidden under TSO (causality) and SC.
    fn message_passing_stale() -> Execution {
        let mut b = ExecutionBuilder::new();
        let wx = b.write("x");
        let wy = b.write("y");
        b.po(wx, wy);
        b.on_thread(1);
        let ry = b.read("y");
        let rx = b.read("x");
        b.po(ry, rx);
        b.rf(wy, ry); // observes the flag...
                      // rx reads from init (stale) -> fr(rx, wx)
        b.build()
    }

    #[test]
    fn mp_stale_forbidden_on_tso() {
        let x = message_passing_stale();
        assert!(x.well_formed().is_ok());
        let v = Tso.check(&x).unwrap_err();
        assert_eq!(v.axiom, "causality");
    }

    #[test]
    fn coherence_violation_caught_by_sc_per_loc() {
        // po: w1 -> w2 (same loc), but co: w2 -> w1.
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.po(w1, w2);
        b.co(w2, w1);
        let x = b.build();
        let v = Tso.check(&x).unwrap_err();
        assert_eq!(v.axiom, "sc_per_loc");
    }

    #[test]
    fn straight_line_single_thread_is_consistent_everywhere() {
        let mut b = ExecutionBuilder::new();
        let r1 = b.read("size");
        let r2 = b.read("y");
        let w = b.write("tmp");
        b.po_chain(&[r1, r2, w]);
        let x = b.build();
        assert!(Sc.check(&x).is_ok());
        assert!(Tso.check(&x).is_ok());
    }

    #[test]
    fn tso_ppo_drops_write_to_read() {
        let mut b = ExecutionBuilder::new();
        let w = b.write("x");
        let r = b.read("y");
        let w2 = b.write("z");
        b.po_chain(&[w, r, w2]);
        let x = b.build();
        let ppo = Tso.ppo(&x);
        assert!(!ppo.contains(w.0, r.0), "W->R relaxed");
        assert!(ppo.contains(r.0, w2.0), "R->W preserved");
        assert!(ppo.contains(w.0, w2.0), "W->W preserved");
    }

    #[test]
    fn fence_restores_write_to_read_order() {
        // SB with fences between write and read on both threads is
        // forbidden even under TSO.
        let mut b = ExecutionBuilder::new();
        let w0 = b.write("x");
        let f0 = b.fence();
        let r0 = b.read("y");
        b.po_chain(&[w0, f0, r0]);
        b.on_thread(1);
        let w1 = b.write("y");
        let f1 = b.fence();
        let r1 = b.read("x");
        b.po_chain(&[w1, f1, r1]);
        let x = b.build();
        let v = Tso.check(&x).unwrap_err();
        assert_eq!(v.axiom, "causality");
    }

    #[test]
    fn fence_relation_composes_across_fence() {
        let mut b = ExecutionBuilder::new();
        let a = b.read("p");
        let f = b.fence();
        let c = b.read("q");
        b.po_chain(&[a, f, c]);
        let x = b.build();
        let fr = fence_relation(&x);
        assert!(fr.contains(a.0, c.0));
        assert!(!fr.contains(c.0, a.0));
    }
}
