//! End-to-end leakage detection over complete executions (§3.2.3, §4.1).

use crate::event::EventId;
use crate::exec::Execution;
use crate::noninterference::{self, NiPredicate, Violation};
use crate::taxonomy::{self, TransmittedField, Transmitter, TransmitterClass};

/// The result of checking one candidate execution for microarchitectural
/// leakage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakageReport {
    /// Non-interference violations found.
    pub violations: Vec<Violation>,
    /// Receivers (targets of culprit `com` edges), deduplicated.
    pub receivers: Vec<EventId>,
    /// Classified transmitters conveying information to the receivers.
    pub transmitters: Vec<Transmitter>,
}

impl LeakageReport {
    /// `true` if no leakage was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The culprit `com` edges, for rendering as dashed edges.
    pub fn culprit_edges(&self) -> Vec<(EventId, EventId)> {
        self.violations.iter().map(|v| v.culprit).collect()
    }

    /// Transmitters of at least the given class rank.
    pub fn transmitters_at_least(&self, class: TransmitterClass) -> Vec<&Transmitter> {
        self.transmitters
            .iter()
            .filter(|t| t.class.severity_rank() >= class.severity_rank())
            .collect()
    }

    /// The single most severe record per transmitting event.
    pub fn summary(&self) -> Vec<Transmitter> {
        taxonomy::most_severe(&self.transmitters)
    }
}

/// Detects microarchitectural leakage in a complete candidate execution:
/// evaluates the three non-interference predicates of §4.1, derives the
/// receivers, and classifies transmitters per Table 1.
///
/// `co`/`cox` inconsistencies (the silent-store pattern of Fig. 5a)
/// additionally mark the *target write itself* as a transmitter of the
/// **data** field of its xstate, per §4.2.
///
/// # Examples
///
/// ```
/// use lcm_core::exec::ExecutionBuilder;
/// use lcm_core::detect_leakage;
///
/// let mut b = ExecutionBuilder::new();
/// let r = b.read("secret_dependent_line");
/// let o = b.observe("secret_dependent_line");
/// b.po(r, o);
/// b.rfx(r, o); // the probe hits the victim's fill
/// let report = detect_leakage(&b.build());
/// assert!(!report.is_clean());
/// assert_eq!(report.transmitters[0].event, r);
/// ```
pub fn detect_leakage(x: &Execution) -> LeakageReport {
    let violations = noninterference::violations(x);
    let receivers = noninterference::receivers(&violations);
    let mut transmitters = taxonomy::classify(x, &receivers);
    // Silent-store co/cox inconsistencies: the possibly-silent write is
    // itself a transmitter of its xstate's data field (§4.2).
    for v in &violations {
        if v.predicate == NiPredicate::Co && !x.cox().contains(v.culprit.0 .0, v.culprit.1 .0) {
            let e = x.event(v.culprit.1);
            transmitters.push(Transmitter {
                event: v.culprit.1,
                class: TransmitterClass::Address,
                field: TransmittedField::Data,
                transient: e.is_transient(),
                receiver: v.receiver,
                access: None,
                access_transient: false,
                index: None,
            });
        }
    }
    LeakageReport {
        violations,
        receivers,
        transmitters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;

    #[test]
    fn clean_execution_reports_clean() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let w = b.write("x");
        b.po(r, w);
        let report = detect_leakage(&b.build());
        assert!(report.is_clean());
        assert!(report.receivers.is_empty());
        assert!(report.transmitters.is_empty());
    }

    #[test]
    fn silent_store_flagged_as_data_field_transmitter() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.silent_write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.rfx(w1, w2);
        let report = detect_leakage(&b.build());
        assert!(!report.is_clean());
        let t = report
            .transmitters
            .iter()
            .find(|t| t.field == TransmittedField::Data)
            .expect("data-field transmitter");
        assert_eq!(t.event, w2);
    }

    #[test]
    fn transmitters_at_least_filters_by_rank() {
        let mut b = ExecutionBuilder::new();
        let idx = b.read("y");
        let acc = b.read("A+y");
        let t = b.read("B+x");
        b.po_chain(&[idx, acc, t]);
        b.addr_gep(idx, acc);
        b.addr_gep(acc, t);
        let o = b.observe("B+x");
        b.po(t, o);
        b.rfx(t, o);
        let report = detect_leakage(&b.build());
        let udts = report.transmitters_at_least(TransmitterClass::UniversalData);
        assert_eq!(udts.len(), 1);
        assert_eq!(udts[0].event, t);
        assert!(
            report
                .transmitters_at_least(TransmitterClass::Address)
                .len()
                >= 3
        );
    }

    #[test]
    fn culprit_edges_match_violations() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let o = b.observe("y");
        b.po(r, o);
        b.rfx(r, o);
        let x = b.build();
        let report = detect_leakage(&x);
        assert_eq!(report.culprit_edges().len(), report.violations.len());
        let init = x.init_of(x.event(o).location().unwrap()).unwrap();
        assert_eq!(report.culprit_edges()[0], (init, o));
    }
}
