//! Deterministic fault injection for the resilience layer.
//!
//! Every degradation path in the analyzer (timeout, budget exhaustion,
//! malformed IR, worker panic, solver abort) has an *injection site*: a
//! named point in the pipeline that, when armed, fails exactly as the
//! real condition would — same error variant, same recovery path — but
//! deterministically and instantly. Tests arm sites through
//! [`FaultPlan`] (programmatically via `DetectorConfig::faults`, or via
//! the `LCM_FAULT` environment variable), so no test has to construct a
//! genuinely pathological workload to exercise a degradation path.
//!
//! A spec is `site` or `site@index`, where `index` is the position of
//! the target function in the module's function order (the same index
//! `par::map_indexed` hands to workers). A bare `site` arms the fault
//! for every function. Multiple specs are comma-separated:
//!
//! ```text
//! LCM_FAULT=worker_panic@1
//! LCM_FAULT=timeout@0,solver_abort@2
//! ```

use std::fmt;

/// Environment variable consulted by [`FaultPlan::from_env`].
pub const FAULT_ENV: &str = "LCM_FAULT";

/// The injection-site names. Each maps onto one `AnalysisError` variant
/// (see `govern`); the full list doubles as the CI fault matrix.
pub mod site {
    /// Trips the wall-clock deadline at the next governor poll.
    pub const TIMEOUT: &str = "timeout";
    /// Trips the solver-conflict budget at the next feasibility query.
    pub const CONFLICT_BUDGET: &str = "conflict_budget";
    /// Trips the S-AEG node budget at the post-build size check.
    pub const NODE_BUDGET: &str = "node_budget";
    /// Trips the S-AEG edge budget at the post-build size check.
    pub const EDGE_BUDGET: &str = "edge_budget";
    /// Fails A-CFG construction as if the IR were malformed.
    pub const MALFORMED_IR: &str = "malformed_ir";
    /// Panics inside the worker thread (exercises `catch_unwind`).
    pub const WORKER_PANIC: &str = "worker_panic";
    /// Makes the SAT backend report an abort (models a solver
    /// `unknown`/resource-out that is not attributable to our budgets).
    pub const SOLVER_ABORT: &str = "solver_abort";
    /// Corrupts the `index`-th record appended to the result store
    /// (checksum damage on disk; the in-memory copy stays valid), so the
    /// next open exercises the corruption-recovery path. The index is
    /// the append ordinal, not a function index.
    pub const STORE_CORRUPT_RECORD: &str = "store.corrupt_record";
    /// Makes the analysis server drop the `index`-th accepted connection
    /// without replying (exercises client retry). The index is the
    /// request ordinal, not a function index.
    pub const SERVE_DROP_CONN: &str = "serve.drop_conn";
    /// Tears the `index`-th reply the server writes: half the frame's
    /// bytes go out, then the connection is shut down mid-line
    /// (exercises the client's torn-frame detection + backoff retry).
    /// The index is the global reply-write ordinal, not a function
    /// index.
    pub const SERVE_PARTIAL_WRITE: &str = "serve.partial_write";
    /// Aborts `Store::compact` after writing `index` live records to
    /// the temp file, *before* the atomic rename — leaving exactly the
    /// disk state a crash mid-compact leaves (intact old log + partial
    /// temp file). The index is the compaction-write ordinal, not a
    /// function index.
    pub const STORE_COMPACT_CRASH: &str = "store.compact_crash";
    /// Makes the fleet worker process analyzing the function at `index`
    /// kill itself (SIGKILL) mid-task, on the task's first attempt only
    /// — the supervisor's restart + redistribution retry completes, so
    /// the run converges to the in-process result.
    pub const FLEET_WORKER_CRASH: &str = "fleet.worker_crash";
    /// Makes the fleet worker analyzing the function at `index` stall
    /// past the supervisor's per-task deadline (first attempt only); the
    /// supervisor kills and restarts it, and the retry completes.
    pub const FLEET_WORKER_HANG: &str = "fleet.worker_hang";
    /// Tears the fleet result frame for the function at `index` mid
    /// write (half the frame's bytes, then the worker exits; first
    /// attempt only) — exercises the supervisor's torn-frame detection
    /// and redelivery.
    pub const FLEET_TASK_TORN: &str = "fleet.task_torn";

    /// All site names, for validation and the CI matrix.
    pub const ALL: &[&str] = &[
        TIMEOUT,
        CONFLICT_BUDGET,
        NODE_BUDGET,
        EDGE_BUDGET,
        MALFORMED_IR,
        WORKER_PANIC,
        SOLVER_ABORT,
        STORE_CORRUPT_RECORD,
        STORE_COMPACT_CRASH,
        SERVE_DROP_CONN,
        SERVE_PARTIAL_WRITE,
        FLEET_WORKER_CRASH,
        FLEET_WORKER_HANG,
        FLEET_TASK_TORN,
    ];
}

/// One armed fault: a site name plus an optional function index
/// (`None` = every function).
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultSpec {
    site: String,
    index: Option<usize>,
}

/// A set of armed faults. Empty by default; merging in `LCM_FAULT` is
/// explicit (see [`FaultPlan::merged_with_env`]) so library users are
/// never surprised by ambient state they did not opt into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

/// A malformed fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Parses a comma-separated list of `site[@index]` specs. Unknown
    /// site names are errors — a typo must not silently disarm a test.
    pub fn parse(s: &str) -> Result<Self, FaultParseError> {
        let mut specs = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, index) = match part.split_once('@') {
                Some((name, idx)) => {
                    let idx = idx
                        .parse::<usize>()
                        .map_err(|_| FaultParseError(format!("`{part}`: bad index `{idx}`")))?;
                    (name, Some(idx))
                }
                None => (part, None),
            };
            if !site::ALL.contains(&name) {
                return Err(FaultParseError(format!(
                    "`{part}`: unknown site `{name}` (expected one of {})",
                    site::ALL.join(", ")
                )));
            }
            specs.push(FaultSpec {
                site: name.to_string(),
                index,
            });
        }
        Ok(Self { specs })
    }

    /// Reads `LCM_FAULT`. Unset or empty yields an empty plan; a
    /// malformed value is a hard error (panics), because running a
    /// fault campaign with a silently-ignored spec is worse than not
    /// running it at all.
    pub fn from_env() -> Self {
        match std::env::var(FAULT_ENV) {
            Ok(v) if !v.trim().is_empty() => match Self::parse(&v) {
                Ok(plan) => plan,
                Err(e) => panic!("{FAULT_ENV}={v}: {e}"),
            },
            _ => Self::default(),
        }
    }

    /// Arms one more fault (builder-style, used by tests).
    #[must_use]
    pub fn arm(mut self, site: &str, index: Option<usize>) -> Self {
        assert!(site::ALL.contains(&site), "unknown fault site `{site}`");
        self.specs.push(FaultSpec {
            site: site.to_string(),
            index,
        });
        self
    }

    /// This plan plus whatever `LCM_FAULT` arms.
    #[must_use]
    pub fn merged_with_env(&self) -> Self {
        let mut merged = self.clone();
        merged.specs.extend(Self::from_env().specs);
        merged
    }

    /// True when no fault is armed (the overwhelmingly common case;
    /// callers use this to skip per-site checks entirely).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Does `site` fire for the function at `index`?
    #[inline]
    pub fn fires(&self, site: &str, index: usize) -> bool {
        self.specs
            .iter()
            .any(|s| s.site == site && s.index.is_none_or(|i| i == index))
    }

    /// The canonical `site[@index],…` spec string, round-trippable
    /// through [`FaultPlan::parse`]. This is how a plan crosses a
    /// process boundary (the fleet supervisor ships it to workers
    /// inside each task frame).
    pub fn render(&self) -> String {
        self.specs
            .iter()
            .map(|s| match s.index {
                Some(i) => format!("{}@{i}", s.site),
                None => s.site.clone(),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// This plan with every spec naming one of `sites` removed. The
    /// fleet supervisor disarms the `fleet.*` sites on a task's retry
    /// dispatch this way, so an injected process fault fires once and
    /// the run converges.
    #[must_use]
    pub fn without_sites(&self, sites: &[&str]) -> Self {
        FaultPlan {
            specs: self
                .specs
                .iter()
                .filter(|s| !sites.contains(&s.site.as_str()))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_fire() {
        let p = FaultPlan::parse("worker_panic@1, timeout").unwrap();
        assert!(p.fires(site::WORKER_PANIC, 1));
        assert!(!p.fires(site::WORKER_PANIC, 0));
        assert!(p.fires(site::TIMEOUT, 0));
        assert!(p.fires(site::TIMEOUT, 7));
        assert!(!p.fires(site::SOLVER_ABORT, 1));
    }

    #[test]
    fn empty_plan() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.is_empty());
        assert!(!p.fires(site::TIMEOUT, 0));
    }

    #[test]
    fn unknown_site_rejected() {
        assert!(FaultPlan::parse("worker_pancake@1").is_err());
        assert!(FaultPlan::parse("timeout@x").is_err());
    }

    #[test]
    fn arm_builder() {
        let p = FaultPlan::default().arm(site::NODE_BUDGET, Some(2));
        assert!(p.fires(site::NODE_BUDGET, 2));
        assert!(!p.fires(site::NODE_BUDGET, 3));
    }

    #[test]
    fn every_site_parses() {
        for s in site::ALL {
            let p = FaultPlan::parse(&format!("{s}@0")).unwrap();
            assert!(p.fires(s, 0), "{s}");
        }
    }

    #[test]
    fn render_round_trips() {
        let p = FaultPlan::parse("worker_panic@1,timeout,fleet.worker_crash@3").unwrap();
        assert_eq!(p.render(), "worker_panic@1,timeout,fleet.worker_crash@3");
        assert_eq!(FaultPlan::parse(&p.render()).unwrap(), p);
        assert_eq!(FaultPlan::default().render(), "");
    }

    #[test]
    fn without_sites_strips_only_named_sites() {
        let p = FaultPlan::parse("timeout@0,fleet.worker_crash,fleet.task_torn@2").unwrap();
        let stripped = p.without_sites(&[site::FLEET_WORKER_CRASH, site::FLEET_TASK_TORN]);
        assert!(stripped.fires(site::TIMEOUT, 0));
        assert!(!stripped.fires(site::FLEET_WORKER_CRASH, 5));
        assert!(!stripped.fires(site::FLEET_TASK_TORN, 2));
        // The original plan is untouched.
        assert!(p.fires(site::FLEET_WORKER_CRASH, 5));
    }
}
