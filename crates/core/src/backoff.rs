//! The workspace's one retry-backoff schedule.
//!
//! Every layer that retries a failed peer — the daemon client
//! reconnecting after a dropped connection, the worker-fleet supervisor
//! respawning a crashed analysis process — uses this same deterministic,
//! jitter-free schedule. Determinism is the point: a fault-matrix run
//! must reproduce the same timing decisions every time, and two layers
//! sharing one schedule keeps the resilience story auditable in one
//! place.

use std::time::Duration;

/// Base delay of the retry backoff schedule.
const BACKOFF_BASE: Duration = Duration::from_millis(5);
/// Ceiling of the retry backoff schedule.
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// The deterministic, jitter-free retry schedule: the delay before
/// retry `attempt` (1-based) is `5 ms · 2^(attempt-1)`, capped at
/// 500 ms — 5, 10, 20, 40, … Deterministic on purpose: a fault-matrix
/// run must reproduce the same timing decisions every time.
pub fn backoff_delay(attempt: usize) -> Duration {
    let exp = attempt.saturating_sub(1).min(16) as u32;
    BACKOFF_BASE.saturating_mul(1u32 << exp).min(BACKOFF_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let ms = |n| backoff_delay(n).as_millis();
        assert_eq!(ms(1), 5);
        assert_eq!(ms(2), 10);
        assert_eq!(ms(3), 20);
        assert_eq!(ms(4), 40);
        assert_eq!(ms(5), 80);
        assert_eq!(ms(8), 500, "capped");
        assert_eq!(ms(100), 500, "stays capped, no overflow");
        // Jitter-free: the same attempt always gets the same delay.
        assert_eq!(backoff_delay(3), backoff_delay(3));
    }
}
