//! Leakage containment models (LCMs): the axiomatic vocabulary of
//! *"Axiomatic Hardware-Software Contracts for Security"* (ISCA 2022).
//!
//! An LCM compares two semantics of the same program:
//!
//! * an **architectural semantics** — the consistent candidate executions of
//!   the program under a memory consistency model (MCM), whose information
//!   flows are the `com = rf ∪ co ∪ fr` relation (§2);
//! * a **microarchitectural semantics** — executions extended with accesses
//!   to *extra-architectural state* (xstate: cache lines / LSQ entries),
//!   whose information flows are `comx = rfx ∪ cox ∪ frx` (§3.2), constrained
//!   by a *confidentiality predicate* instead of a consistency predicate.
//!
//! Microarchitectural **leakage** is a consistent candidate execution whose
//! `comx` deviates from what its `com` implies under non-interference
//! (§3.2.3, §4.1). The culprit `com` edges point at **receivers**; events
//! that source an `rfx` edge into a receiver are **transmitters**, classified
//! by the taxonomy of Table 1 (§3.2.4).
//!
//! # Module map
//!
//! | module | paper section |
//! |---|---|
//! | [`event`] | §2.1.1 events, ⊤/⊥, transient marking |
//! | [`exec`] | §2.1.2 candidate executions, §3.2 microarchitectural witness |
//! | [`mcm`] | §2.1.3 consistency predicates (SC, x86-TSO) |
//! | [`confidentiality`] | §3.2.2/§4.2 confidentiality predicates |
//! | [`noninterference`] | §4.1 rf/co/fr non-interference |
//! | [`taxonomy`] | §3.2.4 transmitter taxonomy (Table 1) |
//! | [`speculation`] | §3.3 speculative semantics (tfo, windows) |
//! | [`cat`] | extension: parameterizable cat-style MCM/LCM specifications |
//! | [`leakage`] | §3.2.3 leak detection over complete executions |
//!
//! # Examples
//!
//! Build the not-taken Spectre v1 candidate execution of Fig. 1c and check
//! it is TSO-consistent:
//!
//! ```
//! use lcm_core::exec::ExecutionBuilder;
//! use lcm_core::mcm::{ConsistencyModel, Tso};
//!
//! let mut b = ExecutionBuilder::new();
//! let r1 = b.read("size");
//! let r2 = b.read("y");
//! b.po(r1, r2);
//! let exec = b.build();
//! assert!(Tso.check(&exec).is_ok());
//! ```

pub mod backoff;
pub mod cat;
pub mod confidentiality;
pub mod event;
pub mod exec;
pub mod fault;
pub mod govern;
pub mod jsonw;
pub mod leakage;
pub mod mcm;
pub mod noninterference;
pub mod par;
pub mod speculation;
pub mod taxonomy;

pub use backoff::backoff_delay;
pub use event::{AccessMode, Event, EventId, EventKind, Location, XState};
pub use exec::{Execution, ExecutionBuilder};
pub use fault::FaultPlan;
pub use govern::{AnalysisError, BudgetKind, Budgets, ResourceGovernor};
pub use leakage::{detect_leakage, LeakageReport};
pub use noninterference::{NiPredicate, Violation};
pub use taxonomy::{Transmitter, TransmitterClass};
