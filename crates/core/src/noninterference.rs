//! The three non-interference predicates of §4.1.
//!
//! Each predicate maps an architectural communication edge to the
//! microarchitectural edge(s) implied by it when microarchitectural
//! non-interference holds; a **violation** is a consistent candidate
//! execution in which the implied edge is absent. The endpoints of culprit
//! `com` edges constitute **receivers** of microarchitectural leakage
//! (§3.2.3).

use std::collections::BTreeSet;

use crate::event::{EventId, EventKind};
use crate::exec::Execution;

/// Which non-interference predicate a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NiPredicate {
    /// rf-non-interference: `w rf r ⇒ w rfx r`.
    Rf,
    /// co-non-interference: immediate `w0 co w1 ⇒ w0 cox w1 ∧ w0 rfx w1`.
    Co,
    /// fr-non-interference: `r fr w` (with `w` the immediate co-successor
    /// of `r`'s source and `r` a miss) `⇒ r rfx w`; plus `frx`/`cox`
    /// ordering.
    Fr,
}

/// A detected deviation of the microarchitectural semantics from what the
/// architectural semantics implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated predicate.
    pub predicate: NiPredicate,
    /// The culprit architectural edge (drawn dashed in the paper's figures).
    pub culprit: (EventId, EventId),
    /// The microarchitectural edge that non-interference implies but the
    /// witness lacks.
    pub expected: (EventId, EventId),
    /// The actual `rfx` source of the receiver, if any.
    pub actual_source: Option<EventId>,
    /// The receiver of leakage: the target endpoint of the culprit edge.
    pub receiver: EventId,
}

/// Checks rf-non-interference (§4.1): every `rf` edge between xstate-
/// sharing events must be mirrored by `rfx`.
///
/// Observers (⊥) are handled specially: they architecturally read only
/// from ⊤, so non-interference implies their probe is sourced by ⊤'s fill
/// of the probed line; a probe sourced by any program instruction is a
/// violation (the dashed `rf` edges of Fig. 2a).
pub fn check_rf_ni(x: &Execution) -> Vec<Violation> {
    let mut out = Vec::new();
    for (w, r) in x.rf().pairs() {
        let (ew, er) = (x.event(EventId(w)), x.event(EventId(r)));
        if er.kind() == EventKind::Observer {
            let actual = x.rfx().predecessors(r).next();
            if actual.is_some_and(|a| x.event(EventId(a)).kind() != EventKind::Init) {
                out.push(Violation {
                    predicate: NiPredicate::Rf,
                    culprit: (EventId(w), EventId(r)),
                    expected: (EventId(w), EventId(r)),
                    actual_source: actual.map(EventId),
                    receiver: EventId(r),
                });
            }
            continue;
        }
        let same_xstate = ew.xstate().is_some() && ew.xstate() == er.xstate();
        if !same_xstate || !er.reads_xstate() || !ew.writes_xstate() {
            continue;
        }
        if !x.rfx().contains(w, r) {
            out.push(Violation {
                predicate: NiPredicate::Rf,
                culprit: (EventId(w), EventId(r)),
                expected: (EventId(w), EventId(r)),
                actual_source: x.rfx().predecessors(r).next().map(EventId),
                receiver: EventId(r),
            });
        }
    }
    out
}

/// The events that could legitimately source `w1`'s cache-line read under
/// non-interference: among `{w0} ∪ {misses r with rf(w0, r) ∧ fr(r, w1)}`,
/// the tfo-latest ones (⊤ members are dominated by every other candidate;
/// the mappings assume a single-core setting, §4.1).
fn expected_fill_sources(x: &Execution, w0: usize, w1: usize) -> Vec<usize> {
    let e1_xs = x.event(EventId(w1)).xstate();
    let mut cands = vec![w0];
    let fr = x.fr();
    for r in x.rf().successors(w0) {
        let er = x.event(EventId(r));
        if er.writes_xstate() && er.xstate() == e1_xs && fr.contains(r, w1) {
            cands.push(r);
        }
    }
    // Keep tfo-maximal candidates; Init is dominated by anything else.
    let maximal: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            !cands.iter().any(|&d| {
                d != c
                    && (x.tfo().contains(c, d)
                        || (x.event(EventId(c)).kind() == EventKind::Init
                            && x.event(EventId(d)).kind() != EventKind::Init))
            })
        })
        .collect();
    maximal
}

/// Checks co-non-interference (§4.1): immediate `co` pairs over the same
/// xstate must be mirrored by `cox` (its absence is the silent-store
/// signature of Fig. 5a), and when no miss intervenes, the later write's
/// cache-line read must hit on the earlier write's fill (`rfx`).
pub fn check_co_ni(x: &Execution) -> Vec<Violation> {
    let mut out = Vec::new();
    for (w0, w1) in x.co_immediate().pairs() {
        let (e0, e1) = (x.event(EventId(w0)), x.event(EventId(w1)));
        let same_xstate = e0.xstate().is_some() && e0.xstate() == e1.xstate();
        if !same_xstate || !e0.writes_xstate() {
            continue;
        }
        if !x.cox().contains(w0, w1) {
            out.push(Violation {
                predicate: NiPredicate::Co,
                culprit: (EventId(w0), EventId(w1)),
                expected: (EventId(w0), EventId(w1)),
                actual_source: None,
                receiver: EventId(w1),
            });
            continue;
        }
        if !e1.reads_xstate() {
            continue;
        }
        let expected = expected_fill_sources(x, w0, w1);
        let actual = x.rfx().predecessors(w1).next();
        if actual.is_none_or(|a| !expected.contains(&a)) {
            // Attribute to fr-NI when a miss intervened (the expected fill
            // came from a read), to co-NI otherwise.
            let from_read = expected.iter().any(|&c| c != w0);
            let culprit_src = if from_read {
                *expected.iter().find(|&&c| c != w0).unwrap()
            } else {
                w0
            };
            out.push(Violation {
                predicate: if from_read {
                    NiPredicate::Fr
                } else {
                    NiPredicate::Co
                },
                culprit: (EventId(culprit_src), EventId(w1)),
                expected: (EventId(culprit_src), EventId(w1)),
                actual_source: actual.map(EventId),
                receiver: EventId(w1),
            });
        }
    }
    out
}

/// Checks fr-non-interference (§4.1): for `r fr w` over common xstate,
/// `r` must microarchitecturally read its line before `w` overwrites it —
/// `frx(r, w)`, or `cox(r, w)` when `r` misses. (The hit-expectation
/// clause of fr-NI is checked jointly with co-NI in [`check_co_ni`].)
pub fn check_fr_ni(x: &Execution) -> Vec<Violation> {
    let mut out = Vec::new();
    let fr = x.fr();
    let frx = x.frx();
    for (r, w) in fr.pairs() {
        let (er, ew) = (x.event(EventId(r)), x.event(EventId(w)));
        let same_xstate = er.xstate().is_some() && er.xstate() == ew.xstate();
        if !same_xstate || !ew.writes_xstate() || !er.reads_xstate() {
            continue;
        }
        let reads_before = frx.contains(r, w) || (er.writes_xstate() && x.cox().contains(r, w));
        if !reads_before {
            out.push(Violation {
                predicate: NiPredicate::Fr,
                culprit: (EventId(r), EventId(w)),
                expected: (EventId(r), EventId(w)),
                actual_source: None,
                receiver: EventId(w),
            });
        }
    }
    out
}

/// All violations of the three predicates.
///
/// # Examples
///
/// An observer probe sourced by a program fill is an rf-NI violation:
///
/// ```
/// use lcm_core::exec::ExecutionBuilder;
/// use lcm_core::noninterference::{violations, NiPredicate};
///
/// let mut b = ExecutionBuilder::new();
/// let r = b.read("y");
/// let o = b.observe("y");
/// b.po(r, o);
/// b.rfx(r, o);
/// let vs = violations(&b.build());
/// assert_eq!(vs.len(), 1);
/// assert_eq!(vs[0].predicate, NiPredicate::Rf);
/// assert_eq!(vs[0].receiver, o);
/// ```
pub fn violations(x: &Execution) -> Vec<Violation> {
    let mut out = check_rf_ni(x);
    out.extend(check_co_ni(x));
    out.extend(check_fr_ni(x));
    out
}

/// The receivers named by a set of violations, deduplicated and ordered.
pub fn receivers(vs: &[Violation]) -> Vec<EventId> {
    let set: BTreeSet<EventId> = vs.iter().map(|v| v.receiver).collect();
    set.into_iter().collect()
}

/// Constructs the *implied* microarchitectural witness of an execution's
/// architectural semantics (§3.2.3): the `rfx`/`cox` assignment that holds
/// when non-interference does. Returns `(rfx, cox)` relations.
///
/// Used to render the "expected" graphs of Fig. 2a and by tests that need
/// a leakage-free baseline.
pub fn implied_microarch(x: &Execution) -> (lcm_relalg::Relation, lcm_relalg::Relation) {
    let n = x.len();
    let mut rfx = lcm_relalg::Relation::empty(n);
    let mut cox = lcm_relalg::Relation::empty(n);
    // rfx := rf restricted to xstate-sharing pairs.
    for (w, r) in x.rf().pairs() {
        let (ew, er) = (x.event(EventId(w)), x.event(EventId(r)));
        if ew.xstate().is_some() && ew.xstate() == er.xstate() && er.reads_xstate() {
            rfx.insert(w, r);
        }
    }
    // cox := co lifted, plus read-misses inserted after their rf source
    // (fr-implied ordering).
    for (a, b) in x.co().pairs() {
        let (ea, eb) = (x.event(EventId(a)), x.event(EventId(b)));
        if ea.xstate().is_some() && ea.xstate() == eb.xstate() {
            cox.insert(a, b);
        }
    }
    for (r, w) in x.fr().pairs() {
        let (er, ew) = (x.event(EventId(r)), x.event(EventId(w)));
        if er.writes_xstate()
            && ew.writes_xstate()
            && er.xstate().is_some()
            && er.xstate() == ew.xstate()
        {
            cox.insert(r, w);
        }
    }
    // Fills implied for writes: the tfo-latest prior accessor of the line.
    for (w0, w1) in x.co_immediate().pairs() {
        let (e0, e1) = (x.event(EventId(w0)), x.event(EventId(w1)));
        if e0.writes_xstate()
            && e1.reads_xstate()
            && e0.xstate().is_some()
            && e0.xstate() == e1.xstate()
            && rfx.predecessors(w1).next().is_none()
        {
            let src = expected_fill_sources(x, w0, w1);
            rfx.insert(src[0], w1);
        }
    }
    (rfx, cox.transitive_closure())
}

/// Returns `true` if the execution exhibits no violation — i.e. its
/// microarchitectural witness matches architectural expectation.
pub fn interference_free(x: &Execution) -> bool {
    violations(x).is_empty()
}

/// Events of kind [`EventKind::Observer`] (⊥ probes).
pub fn observers(x: &Execution) -> Vec<EventId> {
    x.events()
        .iter()
        .filter(|e| e.kind() == EventKind::Observer)
        .map(|e| e.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionBuilder;

    #[test]
    fn clean_straight_line_has_no_violations() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let w = b.write("x");
        b.po(r, w);
        let x = b.build();
        assert!(interference_free(&x));
    }

    #[test]
    fn observer_after_program_read_violates_rf_ni() {
        // Fig. 2a shape: program read fills the line; observer's arch rf is
        // from ⊤ but its probe hits the program's fill.
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let o = b.observe("y");
        b.po(r, o);
        b.rfx(r, o); // probe hits r's fill
        let x = b.build();
        let vs = check_rf_ni(&x);
        assert_eq!(vs.len(), 1);
        let v = &vs[0];
        assert_eq!(v.predicate, NiPredicate::Rf);
        assert_eq!(v.receiver, o);
        assert_eq!(v.actual_source, Some(r));
        let init = x.init_of(x.event(o).location().unwrap()).unwrap();
        assert_eq!(v.culprit, (init, o));
    }

    #[test]
    fn observer_probing_untouched_line_is_clean() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let o = b.observe("z"); // different line: still reads ⊤'s fill
        b.po(r, o);
        let x = b.build();
        assert!(interference_free(&x));
    }

    #[test]
    fn transient_fill_breaks_rf_ni_of_later_read() {
        // A read whose arch source is ⊤ but whose probe hits a transient
        // instruction's fill (the "new DT variant" of §6.1).
        let mut b = ExecutionBuilder::new();
        let t = b.transient_read("A");
        let r = b.read_hit("A");
        b.tfo(t, r);
        b.rfx(t, r);
        let x = b.build();
        let vs = check_rf_ni(&x);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].actual_source, Some(t));
    }

    #[test]
    fn silent_store_violates_co_ni() {
        // Fig. 5a: W x; W x (silent). co(w1, w2) without cox(w1, w2).
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.silent_write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.rfx(w1, w2);
        let x = b.build();
        let vs = check_co_ni(&x);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].culprit, (w1, w2));
        assert_eq!(vs[0].receiver, w2);
    }

    #[test]
    fn non_silent_back_to_back_writes_are_clean() {
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.rfx(w1, w2);
        b.cox(w1, w2);
        let x = b.build();
        assert!(check_co_ni(&x).is_empty());
    }

    #[test]
    fn co_ni_requires_hit_between_neighbours() {
        // cox present but w2's line read sourced elsewhere (evicted in
        // between): co-NI violation.
        let mut b = ExecutionBuilder::new();
        let w1 = b.write("x");
        let w2 = b.write("x");
        b.po(w1, w2);
        b.co(w1, w2);
        b.cox(w1, w2);
        // w2's rfx completed from ⊤ (no explicit edge): a miss to ⊤'s line.
        let x = b.build();
        let vs = check_co_ni(&x);
        assert_eq!(vs.len(), 1);
        let init = x.init_of(x.event(w1).location().unwrap()).unwrap();
        assert_eq!(vs[0].actual_source, Some(init));
    }

    #[test]
    fn fr_ni_write_hits_on_read_fill() {
        // r reads from ⊤ (miss, fills line), then w overwrites: fr(r, w).
        // Expected: cox(r, w) and rfx(r, w).
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let w = b.write("x");
        b.po(r, w);
        b.rfx(r, w);
        b.cox(r, w);
        let x = b.build();
        assert!(check_fr_ni(&x).is_empty());
    }

    #[test]
    fn fr_ni_violated_when_write_misses_read_fill() {
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let w = b.write("x");
        b.po(r, w);
        // w's rfx completed from ⊤, bypassing r's fill: violation
        // (attributed to fr-NI since a miss intervened).
        let x = b.build();
        let vs = violations(&x);
        assert!(!vs.is_empty());
        assert!(vs
            .iter()
            .any(|v| v.receiver == w && v.predicate == NiPredicate::Fr));
    }

    #[test]
    fn implied_microarch_is_interference_free() {
        // Rebuild an execution using the implied witness: zero violations.
        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let w = b.write("y");
        let r2 = b.read_hit("y");
        b.po_chain(&[r, w, r2]);
        b.rf(w, r2);
        let x0 = b.build();
        let (rfx, cox) = implied_microarch(&x0);

        let mut b = ExecutionBuilder::new();
        let r = b.read("y");
        let w = b.write("y");
        let r2 = b.read_hit("y");
        b.po_chain(&[r, w, r2]);
        b.rf(w, r2);
        for (a, c) in rfx.pairs() {
            b.rfx(EventId(a), EventId(c));
        }
        for (a, c) in cox.pairs() {
            b.cox(EventId(a), EventId(c));
        }
        let x = b.build();
        assert!(interference_free(&x), "violations: {:?}", violations(&x));
    }

    #[test]
    fn receivers_deduplicated_and_sorted() {
        let v = |r: usize| Violation {
            predicate: NiPredicate::Rf,
            culprit: (EventId(0), EventId(r)),
            expected: (EventId(0), EventId(r)),
            actual_source: None,
            receiver: EventId(r),
        };
        let vs = vec![v(3), v(1), v(3)];
        assert_eq!(receivers(&vs), vec![EventId(1), EventId(3)]);
    }
}
