//! Events, locations, and extra-architectural state identifiers (§2.1.1, §3.2.1).

use std::fmt;

/// Index of an event within one [`crate::Execution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An architectural (shared-memory) location.
///
/// Litmus programs name locations; the [`crate::ExecutionBuilder`] interns
/// names to dense `Location` ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub u32);

/// An extra-architectural state element (§3.2.1): the abstract merge of the
/// core-private cache line and LSQ entry accessed on behalf of a memory
/// instruction.
///
/// Under the paper's direct-mapped, infinitely-sized cache abstraction
/// (§5.2) there is one `XState` per `Location`; other mappings (e.g. finite
/// direct-mapped caches where distinct locations collide) are expressed by
/// assigning the same `XState` to several events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XState(pub u32);

/// How an event accesses its xstate element (§3.2.1).
///
/// * cacheable read hit → [`AccessMode::Read`]
/// * cacheable read miss → [`AccessMode::ReadModifyWrite`]
/// * cacheable write (write-allocate) → [`AccessMode::ReadModifyWrite`]
/// * silent store (§4.2, Fig. 5a) → [`AccessMode::Read`]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Microarchitecturally reads xstate (cache hit / LSQ forward / silent store).
    Read,
    /// Microarchitecturally reads then writes xstate (miss or ordinary write).
    ReadModifyWrite,
    /// Microarchitecturally writes xstate without reading it
    /// (no-write-allocate stores; unused by the default model).
    Write,
}

impl AccessMode {
    /// Whether this access observes (reads) the xstate element.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadModifyWrite)
    }

    /// Whether this access updates (writes) the xstate element.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::ReadModifyWrite | AccessMode::Write)
    }
}

/// The kind of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// ⊤-member: the initialization write of one location (and its xstate).
    /// The paper draws the set of these as a single ⊤ node (§3.2).
    Init,
    /// An architectural read (load).
    Read,
    /// An architectural write (store).
    Write,
    /// A fence / synchronization event (e.g. `lfence`).
    Fence,
    /// A conditional-branch event; source of `ctrl` dependencies.
    Branch,
    /// ⊥-member: an observer access probing one xstate element after the
    /// program completes. Architecturally it reads only from ⊤ (§3.2).
    Observer,
    /// A hardware prefetch (Fig. 5b): accesses xstate but participates in no
    /// architectural relation (no `com`, no `po`).
    Prefetch,
}

impl EventKind {
    /// Is this an architectural memory event (a `MemoryEvent` in §2.1.1)?
    ///
    /// `Observer` counts: it reads a location architecturally (always from
    /// ⊤). `Prefetch` does not: it is microarchitectural only.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            EventKind::Init | EventKind::Read | EventKind::Write | EventKind::Observer
        )
    }

    /// Does this event architecturally read its location?
    pub fn is_arch_read(self) -> bool {
        matches!(self, EventKind::Read | EventKind::Observer)
    }

    /// Does this event architecturally write its location?
    pub fn is_arch_write(self) -> bool {
        matches!(self, EventKind::Init | EventKind::Write)
    }
}

/// One node of a candidate execution graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub(crate) id: EventId,
    pub(crate) kind: EventKind,
    pub(crate) thread: usize,
    pub(crate) location: Option<Location>,
    pub(crate) xstate: Option<XState>,
    pub(crate) xmode: Option<AccessMode>,
    pub(crate) transient: bool,
    pub(crate) label: String,
}

impl Event {
    /// This event's id.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// This event's kind.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Thread (core) executing the event. ⊤/⊥/prefetch events use the
    /// thread of the program point they are attached to.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// The architectural location accessed, if this is a memory event.
    pub fn location(&self) -> Option<Location> {
        self.location
    }

    /// The xstate element accessed, if any.
    pub fn xstate(&self) -> Option<XState> {
        self.xstate
    }

    /// How the xstate element is accessed, if any.
    pub fn xmode(&self) -> Option<AccessMode> {
        self.xmode
    }

    /// `true` for events fetched along a mis-speculated path: ordered by
    /// `tfo` but not `po` (§3.3).
    pub fn is_transient(&self) -> bool {
        self.transient
    }

    /// Human-readable label (used in DOT rendering and reports).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the event reads its xstate element.
    pub fn reads_xstate(&self) -> bool {
        self.xmode.is_some_and(AccessMode::reads)
    }

    /// Whether the event writes its xstate element.
    pub fn writes_xstate(&self) -> bool {
        self.xmode.is_some_and(AccessMode::writes)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.label.is_empty() {
            write!(f, "{}: {:?}", self.id, self.kind)
        } else {
            write!(f, "{}", self.label)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_read_write_flags() {
        assert!(AccessMode::Read.reads());
        assert!(!AccessMode::Read.writes());
        assert!(AccessMode::ReadModifyWrite.reads());
        assert!(AccessMode::ReadModifyWrite.writes());
        assert!(!AccessMode::Write.reads());
        assert!(AccessMode::Write.writes());
    }

    #[test]
    fn kind_classification() {
        assert!(EventKind::Init.is_memory());
        assert!(EventKind::Observer.is_memory());
        assert!(!EventKind::Prefetch.is_memory());
        assert!(!EventKind::Fence.is_memory());
        assert!(EventKind::Read.is_arch_read());
        assert!(EventKind::Observer.is_arch_read());
        assert!(!EventKind::Read.is_arch_write());
        assert!(EventKind::Init.is_arch_write());
    }

    #[test]
    fn display_event_id() {
        assert_eq!(EventId(3).to_string(), "e3");
    }
}
