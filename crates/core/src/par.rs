//! Deterministic fan-out over `std::thread::scope` (no dependencies).
//!
//! Per-function leakage analysis is embarrassingly parallel — Clou's
//! evaluation (§6) exploits exactly this — but reports must stay
//! byte-identical to a serial run. [`map_indexed`] therefore hands out
//! work items through an atomic cursor (work stealing, so one slow
//! function does not idle the other workers) and reassembles results in
//! input order before returning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `jobs` knob: `0` means "all available cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `jobs == 0` uses all available cores; `jobs <= 1` (or a single item)
/// runs serially on the caller thread, byte-for-byte identical to a
/// plain loop. Workers claim items one at a time from a shared atomic
/// cursor, so uneven per-item cost balances automatically.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len()).max(1);
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut tagged: Vec<(usize, R)> = per_worker.drain(..).flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`map_indexed`], but with **per-worker state**: each worker
/// thread calls `init` once before claiming its first item and passes
/// the state mutably to every `f` call it makes. This is the carrier
/// for intra-function work splitting with a persistent incremental SAT
/// solver — `init` clones one encoded [`Feasibility`]-like context per
/// worker and `f` reuses it (learnt clauses, memo) across all the work
/// units that worker drains.
///
/// Determinism contract: results are reassembled in input order, so as
/// long as `f(i, item)`'s *return value* does not depend on the worker
/// state's history (the solver answers are semantic; learnt clauses
/// change only the search path), output is byte-identical for any job
/// count. `jobs <= 1` (or a single item) runs serially on the caller
/// thread with one state, exactly like a plain loop.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` (the scope joins all workers
/// first).
pub fn map_indexed_with<T, R, W, I, F>(items: &[T], jobs: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len()).max(1);
    if jobs <= 1 || items.len() <= 1 {
        let mut w = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(&mut w, i, x))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut w = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut w, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut tagged: Vec<(usize, R)> = per_worker.drain(..).flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Like [`map_indexed`], but each item's closure runs under
/// `catch_unwind`: a panic in `f` degrades *that item* to
/// `Err(message)` instead of tearing down the whole fan-out. The other
/// workers keep draining the cursor untouched.
///
/// The panic payload is rendered with [`panic_message`]; the default
/// panic hook still prints its usual report to stderr (suppress it in
/// tests with a custom hook if the noise matters).
pub fn map_indexed_catch<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed(items, jobs, |i, x| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, x))).map_err(|p| {
            worker_panics().inc();
            panic_message(p.as_ref())
        })
    })
}

fn worker_panics() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::WORKER_PANICS,
            "Worker panics caught and degraded to per-item errors by the parallel driver",
        )
    })
}

/// Best-effort rendering of a panic payload (the `&str`/`String` cases
/// cover `panic!` with a message, which is all our code produces).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 7] {
            let out = map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_on_uneven_work() {
        let items: Vec<u64> = (0..40).map(|i| (i * 7919) % 1000).collect();
        let slow = |_: usize, &n: &u64| -> u64 {
            // Busy work proportional to the item, to skew worker loads.
            (0..n * 50).fold(n, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial = map_indexed(&items, 1, slow);
        let parallel = map_indexed(&items, 4, slow);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(map_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map_indexed(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn jobs_capped_at_item_count() {
        let items = [1u8, 2];
        let out = map_indexed(&items, 64, |_, &x| x as u32);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn with_state_initializes_once_per_worker_and_keeps_order() {
        let items: Vec<u32> = (0..64).collect();
        for jobs in [1, 2, 4] {
            let inits = AtomicUsize::new(0);
            let out = map_indexed_with(
                &items,
                jobs,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u32 // per-worker call tally; must not leak into results
                },
                |calls, i, &x| {
                    *calls += 1;
                    assert_eq!(i as u32, x);
                    x * 5
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 5).collect::<Vec<_>>());
            let n = inits.load(Ordering::Relaxed);
            assert!(n >= 1 && n <= jobs.max(1), "inits={n} jobs={jobs}");
        }
    }

    #[test]
    fn catch_isolates_a_panicking_item() {
        let items: Vec<u32> = (0..8).collect();
        // Quiet the default panic hook for the intentional panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = map_indexed_catch(&items, 4, |_, &x| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(*r, Err("boom at 3".to_string()));
            } else {
                assert_eq!(*r, Ok(i as u32 * 2));
            }
        }
    }
}
