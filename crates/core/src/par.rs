//! Deterministic fan-out over `std::thread::scope` (no dependencies).
//!
//! Per-function leakage analysis is embarrassingly parallel — Clou's
//! evaluation (§6) exploits exactly this — but reports must stay
//! byte-identical to a serial run. [`map_indexed`] therefore hands out
//! work items through an atomic cursor (work stealing, so one slow
//! function does not idle the other workers) and reassembles results in
//! input order before returning.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a `jobs` knob: `0` means "all available cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `jobs == 0` uses all available cores; `jobs <= 1` (or a single item)
/// runs serially on the caller thread, byte-for-byte identical to a
/// plain loop. Workers claim items one at a time from a shared atomic
/// cursor, so uneven per-item cost balances automatically.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len()).max(1);
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut tagged: Vec<(usize, R)> = per_worker.drain(..).flatten().collect();
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 7] {
            let out = map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_serial_on_uneven_work() {
        let items: Vec<u64> = (0..40).map(|i| (i * 7919) % 1000).collect();
        let slow = |_: usize, &n: &u64| -> u64 {
            // Busy work proportional to the item, to skew worker loads.
            (0..n * 50).fold(n, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let serial = map_indexed(&items, 1, slow);
        let parallel = map_indexed(&items, 4, slow);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(map_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map_indexed(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn jobs_capped_at_item_count() {
        let items = [1u8, 2];
        let out = map_indexed(&items, 64, |_, &x| x as u32);
        assert_eq!(out, vec![1, 2]);
    }
}
