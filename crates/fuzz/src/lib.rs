//! Differential fuzzing oracle for the leakage engines (DESIGN.md §6i).
//!
//! The static engines in `lcm-detect` over-approximate the paper's
//! axiomatic semantics; nothing in the fixed suites checks their
//! behaviour on programs we didn't write. This crate closes that gap
//! with the oracle-plus-generator shape of Cats-vs-Spectre and the
//! leakage-contract-synthesis line of work:
//!
//! * [`gen`] — a deterministic, seed-keyed random program generator over
//!   a speculation-gadget grammar, rendered as minic source;
//! * [`oracle`] — a bounded-exhaustive speculative reference interpreter
//!   deciding two-run secret non-interference concretely;
//! * [`shrink`] — a greedy AST minimizer for failing programs;
//! * [`diff`] — the harness: engine-vs-oracle cross-checking, `repair()`
//!   re-verification, and a SAT-backed fence-minimality certificate.

#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use diff::{
    certify_minimal_fences, evaluate, run_sweep, FuzzConfig, MinimalityReport, Mismatch,
    SweepReport,
};
pub use gen::{generate, generate_batch, Program};
pub use oracle::{analyze, LeakKind, OracleConfig, OracleReport};
pub use shrink::shrink;
