//! Ground-truth oracle: a bounded-exhaustive speculative reference
//! interpreter (DESIGN.md §6i).
//!
//! The oracle decides leakage the way the paper defines it — as a
//! *hyperproperty* over executions — rather than the way the engines
//! compute it. For a small lattice of attacker inputs it runs the program
//! concretely twice per input, with two different secret assignments, and
//! compares **observation traces** (load/store addresses and branch
//! directions — the microarchitecturally visible events; loaded *values*
//! are never observable):
//!
//! * differing architectural traces ⇒ an architectural leak (outside the
//!   engines' threat model — they only reason about transient leakage);
//! * for each speculation **choice point** on the (equal) architectural
//!   path, differing *transient* traces ⇒ a speculative leak attributed
//!   to that choice's primitive.
//!
//! Choice points are explored one at a time: a mispredicted branch, a
//! store-bypassing load (reads the stale pre-store value), or a
//! mis-forwarded load (receives a different-address store's value). This
//! single-divergence model is sound for the differential harness's
//! purpose: transient executions roll back completely, so each choice is
//! independent, and under-exploring nested mispredictions can only make
//! the oracle *miss* leaks, never invent one — mismatches are only
//! declared in the oracle-leaks-but-engine-is-clean direction.
//!
//! Fences carry their architectural meaning: a fence squashes an open
//! transient window, and a load never bypasses or forwards from a store
//! older than the last executed fence.

use std::collections::{BTreeSet, HashMap};

use lcm_ir::{BinOp, Function, Inst, InstId, Module, Terminator};

/// The speculation primitive a choice point (and hence a leak) belongs
/// to; aligned with the three engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakKind {
    /// Conditional-branch misprediction (Spectre v1).
    Pht,
    /// Store-to-load bypass: the load reads the stale value (Spectre v4).
    Stl,
    /// Predictive store forwarding from a mismatched address.
    Psf,
}

/// Oracle tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Total interpreter step budget per run.
    pub fuel: u64,
    /// Transient window: scheduled instructions executed past a
    /// divergence before the squash.
    pub window: usize,
    /// Store-queue depth: how far back a load may bypass or forward.
    pub lsq: usize,
    /// Mismatched-address stores considered per load for PSF forwarding.
    pub max_forward: usize,
    /// Cap on attacker input vectors per program.
    pub max_inputs: usize,
    /// Cap on choice points explored per input.
    pub max_choices: usize,
    /// The two secret assignments compared by the hyperproperty.
    pub secret_pair: (i64, i64),
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            fuel: 4096,
            window: 64,
            lsq: 16,
            max_forward: 4,
            max_inputs: 36,
            max_choices: 128,
            secret_pair: (3, 5),
        }
    }
}

impl OracleConfig {
    /// A cheaper profile for CI sweeps: smaller input lattice and choice
    /// budget, same semantics.
    pub fn quick() -> Self {
        OracleConfig {
            max_inputs: 12,
            max_choices: 64,
            ..OracleConfig::default()
        }
    }
}

/// The oracle's verdict for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Secret-dependent *architectural* traces were seen (non-transient
    /// leak; outside the engines' scope).
    pub arch_leak: bool,
    /// Primitives with a witnessed transient leak.
    pub leaks: BTreeSet<LeakKind>,
    /// Attacker input vectors exercised.
    pub inputs: usize,
    /// Transient choice points explored (over all inputs).
    pub choices: usize,
    /// Runs abandoned (fuel exhaustion or unsupported instructions).
    pub skipped: usize,
}

impl OracleReport {
    /// `true` if the primitive leaks under the oracle.
    pub fn leaks(&self, kind: LeakKind) -> bool {
        self.leaks.contains(&kind)
    }

    /// `true` if no leak of any sort was witnessed.
    pub fn secure(&self) -> bool {
        !self.arch_leak && self.leaks.is_empty()
    }
}

/// One microarchitecturally observable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    Load(i64),
    Store(i64),
    Branch(bool),
}

/// A speculation choice point on the architectural path, identified by
/// execution ordinals so it names the same point in both secret runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Choice {
    kind: LeakKind,
    /// Ordinal of the branch (Pht) or load (Stl/Psf) on the arch path.
    site: usize,
    /// For Stl/Psf: index into the store log of the involved store.
    store: usize,
}

#[derive(Debug)]
enum RunError {
    OutOfFuel,
    Unsupported,
}

struct RunResult {
    /// Architectural observations (empty past the divergence point).
    obs: Vec<Obs>,
    /// Transient observations (divergent runs only).
    tobs: Vec<Obs>,
    /// Choice points discovered (scouting runs only).
    choices: Vec<Choice>,
}

struct Exec {
    mem: HashMap<i64, i64>,
    /// Transient stores land here; never committed.
    overlay: HashMap<i64, i64>,
    transient: bool,
    transient_left: usize,
    next_alloca: i64,
    fuel: u64,
    obs: Vec<Obs>,
    tobs: Vec<Obs>,
    choices: Vec<Choice>,
    branches_seen: usize,
    loads_seen: usize,
    /// `(addr, value_before, value_stored)` per architectural store.
    store_log: Vec<(i64, i64, i64)>,
    /// Stores before this log index are fenced off from bypassing.
    window_start: usize,
    divert: Option<Choice>,
    cfg: OracleConfig,
}

/// Signals that the run is over (transient squash or architectural ret).
struct Done;

impl Exec {
    fn new(module: &Module, secret_fill: i64, cfg: OracleConfig, divert: Option<Choice>) -> Self {
        let mut mem = HashMap::new();
        for (gi, g) in module.globals.iter().enumerate() {
            let base = (gi as i64 + 1) << 32;
            for &(idx, v) in &g.init {
                mem.insert(base + i64::from(idx), v);
            }
            if g.secret {
                for w in 0..g.size {
                    mem.insert(base + i64::from(w), secret_fill);
                }
            }
        }
        Exec {
            mem,
            overlay: HashMap::new(),
            transient: false,
            transient_left: 0,
            next_alloca: 1 << 48,
            fuel: cfg.fuel,
            obs: Vec::new(),
            tobs: Vec::new(),
            choices: Vec::new(),
            branches_seen: 0,
            loads_seen: 0,
            store_log: Vec::new(),
            window_start: 0,
            divert,
            cfg,
        }
    }

    fn burn(&mut self) -> Result<(), RunError> {
        if self.fuel == 0 {
            return Err(RunError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn read_mem(&self, a: i64) -> i64 {
        if self.transient {
            if let Some(&v) = self.overlay.get(&a) {
                return v;
            }
        }
        *self.mem.get(&a).unwrap_or(&0)
    }

    fn observe(&mut self, o: Obs) {
        if self.transient {
            self.tobs.push(o);
        } else {
            self.obs.push(o);
        }
    }

    /// Enters the transient window; returns [`Done`] via the caller when
    /// the window closes.
    fn diverge(&mut self) {
        self.transient = true;
        self.transient_left = self.cfg.window;
    }

    /// Ticks the transient budget. `Err(Done)` squashes.
    fn transient_tick(&mut self) -> Result<(), Done> {
        if self.transient {
            if self.transient_left == 0 {
                return Err(Done);
            }
            self.transient_left -= 1;
        }
        Ok(())
    }

    fn run(&mut self, f: &Function, args: &[i64]) -> Result<(), RunError> {
        let mut env: HashMap<u32, i64> = HashMap::new();
        let mut bb = f.entry();
        loop {
            let insts = f.blocks[bb.0 as usize].insts.clone();
            for iid in insts {
                self.burn()?;
                match self.step(f, iid, args, &mut env)? {
                    Ok(()) => {}
                    Err(Done) => return Ok(()),
                }
            }
            match f.blocks[bb.0 as usize].term.clone() {
                Terminator::Br(t) => bb = t,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval(f, cond, args, &mut env)? != 0;
                    if self.transient {
                        if self.transient_tick().is_err() {
                            return Ok(());
                        }
                        self.observe(Obs::Branch(c));
                        bb = if c { then_bb } else { else_bb };
                    } else {
                        let site = self.branches_seen;
                        self.branches_seen += 1;
                        if self.divert.is_none() {
                            self.choices.push(Choice {
                                kind: LeakKind::Pht,
                                site,
                                store: 0,
                            });
                        }
                        let mispredict = matches!(
                            self.divert,
                            Some(Choice {
                                kind: LeakKind::Pht,
                                site: s,
                                ..
                            }) if s == site
                        );
                        if mispredict {
                            self.diverge();
                            self.observe(Obs::Branch(!c));
                            bb = if c { else_bb } else { then_bb };
                        } else {
                            self.observe(Obs::Branch(c));
                            bb = if c { then_bb } else { else_bb };
                        }
                    }
                }
                Terminator::Ret(_) => return Ok(()),
            }
        }
    }

    /// Executes one scheduled instruction. The outer `Result` is a hard
    /// interpreter error; the inner one signals end-of-run.
    #[allow(clippy::result_large_err)]
    fn step(
        &mut self,
        f: &Function,
        iid: InstId,
        args: &[i64],
        env: &mut HashMap<u32, i64>,
    ) -> Result<Result<(), Done>, RunError> {
        if self.transient_tick().is_err() {
            return Ok(Err(Done));
        }
        match f.inst(iid).clone() {
            Inst::Alloca { size, .. } => {
                let addr = self.next_alloca;
                self.next_alloca += i64::from(size.max(1));
                env.insert(iid.0, addr);
            }
            Inst::Load { addr, .. } => {
                let a = self.eval(f, addr, args, env)?;
                if self.transient {
                    self.observe(Obs::Load(a));
                    env.insert(iid.0, self.read_mem(a));
                    return Ok(Ok(()));
                }
                let site = self.loads_seen;
                self.loads_seen += 1;
                // Scout bypass/forward choices within the store window.
                let window = &self.store_log[self.window_start..];
                let base = self.window_start;
                if self.divert.is_none() {
                    let mut forwards = 0;
                    for (off, &(sa, _, _)) in window.iter().enumerate().rev().take(self.cfg.lsq) {
                        if sa == a {
                            self.choices.push(Choice {
                                kind: LeakKind::Stl,
                                site,
                                store: base + off,
                            });
                            break; // youngest matching store only
                        }
                    }
                    for (off, &(sa, _, _)) in window.iter().enumerate().rev().take(self.cfg.lsq) {
                        if sa != a && forwards < self.cfg.max_forward {
                            self.choices.push(Choice {
                                kind: LeakKind::Psf,
                                site,
                                store: base + off,
                            });
                            forwards += 1;
                        }
                    }
                }
                let diverted = match self.divert {
                    Some(
                        c @ Choice {
                            kind: LeakKind::Stl | LeakKind::Psf,
                            site: s,
                            ..
                        },
                    ) if s == site => Some(c),
                    _ => None,
                };
                if let Some(c) = diverted {
                    let (sa, before, stored) =
                        *self.store_log.get(c.store).ok_or(RunError::Unsupported)?;
                    let v = match c.kind {
                        // Bypass: the load beats the (same-address) store
                        // and reads the value memory held before it.
                        LeakKind::Stl if sa == a => before,
                        // Forwarding: the load is predicted to match the
                        // (different-address) store and takes its value.
                        LeakKind::Psf if sa != a => stored,
                        // The store relationship changed between the
                        // scouting run and this one — possible only if
                        // the runs already diverged architecturally.
                        _ => return Err(RunError::Unsupported),
                    };
                    self.diverge();
                    self.observe(Obs::Load(a));
                    env.insert(iid.0, v);
                    return Ok(Ok(()));
                }
                self.observe(Obs::Load(a));
                env.insert(iid.0, self.read_mem(a));
            }
            Inst::Store { addr, value } => {
                let a = self.eval(f, addr, args, env)?;
                let v = self.eval(f, value, args, env)?;
                self.observe(Obs::Store(a));
                if self.transient {
                    self.overlay.insert(a, v);
                } else {
                    self.store_log.push((a, *self.mem.get(&a).unwrap_or(&0), v));
                    self.mem.insert(a, v);
                }
            }
            Inst::Fence => {
                if self.transient {
                    return Ok(Err(Done)); // squash
                }
                self.window_start = self.store_log.len();
            }
            Inst::Call { .. } | Inst::Havoc { .. } => return Err(RunError::Unsupported),
            pure => {
                debug_assert!(!pure.is_scheduled());
                let v = self.eval(f, iid, args, env)?;
                env.insert(iid.0, v);
            }
        }
        Ok(Ok(()))
    }

    fn eval(
        &mut self,
        f: &Function,
        v: InstId,
        args: &[i64],
        env: &mut HashMap<u32, i64>,
    ) -> Result<i64, RunError> {
        if let Some(&x) = env.get(&v.0) {
            return Ok(x);
        }
        self.burn()?;
        let out = match f.inst(v).clone() {
            Inst::Const(c) => c,
            Inst::Param { index, .. } => *args.get(index).unwrap_or(&0),
            Inst::GlobalAddr(g) => (i64::from(g.0) + 1) << 32,
            Inst::Gep { base, index, scale } => {
                let b = self.eval(f, base, args, env)?;
                let i = self.eval(f, index, args, env)?;
                b + i * i64::from(scale.max(1))
            }
            Inst::Bin { op, lhs, rhs } => {
                let a = self.eval(f, lhs, args, env)?;
                let b = self.eval(f, rhs, args, env)?;
                op.eval(a, b)
            }
            _ => 0,
        };
        Ok(out)
    }
}

fn execute(
    module: &Module,
    fname: &str,
    args: &[i64],
    secret_fill: i64,
    cfg: OracleConfig,
    divert: Option<Choice>,
) -> Result<RunResult, RunError> {
    let f = module.function(fname).ok_or(RunError::Unsupported)?;
    let mut e = Exec::new(module, secret_fill, cfg, divert);
    e.run(f, args)?;
    Ok(RunResult {
        obs: e.obs,
        tobs: e.tobs,
        choices: e.choices,
    })
}

/// The attacker input lattice for a function: per integer parameter, a
/// few in-bounds values plus every public→secret inter-global delta, so
/// out-of-bounds indexing concretely reaches secret memory. The cross
/// product is capped at `cfg.max_inputs`.
fn input_vectors(module: &Module, f: &Function, cfg: OracleConfig) -> Vec<Vec<i64>> {
    let mut per_param: Vec<i64> = vec![0, 1, 7];
    for (si, s) in module.globals.iter().enumerate() {
        if !s.secret {
            continue;
        }
        let sbase = (si as i64 + 1) << 32;
        for (pi, p) in module.globals.iter().enumerate() {
            if p.secret {
                continue;
            }
            let pbase = (pi as i64 + 1) << 32;
            per_param.push(sbase - pbase);
        }
    }
    per_param.dedup();
    let nparams = f.params.len().min(3);
    let full = per_param
        .len()
        .checked_pow(nparams as u32)
        .unwrap_or(usize::MAX);
    if full <= cfg.max_inputs {
        // Full cross product.
        let mut out: Vec<Vec<i64>> = vec![vec![0; f.params.len()]];
        for p in 0..nparams {
            let mut next = Vec::new();
            for v in &out {
                for &c in &per_param {
                    let mut v2 = v.clone();
                    v2[p] = c;
                    next.push(v2);
                }
            }
            out = next;
        }
        return out;
    }
    // One-hot sweep: every candidate reaches every parameter position, so
    // truncation never starves a later parameter of the delta values.
    let mut out: Vec<Vec<i64>> = vec![vec![0; f.params.len()]];
    for p in 0..nparams {
        for &c in &per_param {
            if c == 0 {
                continue;
            }
            let mut v = vec![0; f.params.len()];
            v[p] = c;
            out.push(v);
        }
    }
    out.truncate(cfg.max_inputs);
    out
}

/// Runs the two-run non-interference check over the input lattice and
/// every single-divergence choice point.
pub fn analyze(module: &Module, fname: &str, cfg: OracleConfig) -> OracleReport {
    let mut report = OracleReport::default();
    let f = match module.function(fname) {
        Some(f) => f,
        None => return report,
    };
    let (sa, sb) = cfg.secret_pair;
    for args in input_vectors(module, f, cfg) {
        report.inputs += 1;
        let (ra, rb) = match (
            execute(module, fname, &args, sa, cfg, None),
            execute(module, fname, &args, sb, cfg, None),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            _ => {
                report.skipped += 1;
                continue;
            }
        };
        if ra.obs != rb.obs || ra.choices != rb.choices {
            report.arch_leak = true;
            continue;
        }
        for &c in ra.choices.iter().take(cfg.max_choices) {
            report.choices += 1;
            let (ta, tb) = match (
                execute(module, fname, &args, sa, cfg, Some(c)),
                execute(module, fname, &args, sb, cfg, Some(c)),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                _ => {
                    report.skipped += 1;
                    continue;
                }
            };
            if ta.tobs != tb.tobs {
                report.leaks.insert(c.kind);
            }
        }
        if report.arch_leak && report.leaks.len() == 3 {
            break;
        }
    }
    report
}

/// Convenience: analyzes the first public function.
pub fn analyze_first_public(module: &Module, cfg: OracleConfig) -> OracleReport {
    match module.public_functions().next() {
        Some(f) => {
            let name = f.name.clone();
            analyze(module, &name, cfg)
        }
        None => OracleReport::default(),
    }
}

// Keep the unused-import lint honest: BinOp is used via `op.eval`.
const _: fn(BinOp, i64, i64) -> i64 = BinOp::eval;

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(src: &str) -> OracleReport {
        let m = lcm_minic::compile(src).expect("compile");
        analyze_first_public(&m, OracleConfig::default())
    }

    const GLOBALS: &str =
        "int pub_a[16]; int pub_b[512]; int sec_key[8]; int scratch[8]; int guard; int temp;";

    #[test]
    fn spectre_v1_is_a_pht_leak() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ if (x < guard) {{ temp &= pub_b[(pub_a[x]) * 64]; }} }}"
        ));
        assert!(r.leaks(LeakKind::Pht), "{r:?}");
        assert!(!r.arch_leak, "guard is zero: the access is arch-dead");
    }

    #[test]
    fn fenced_spectre_v1_is_secure() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ if (x < guard) {{ lfence(); temp &= pub_b[(pub_a[x]) * 64]; }} }}"
        ));
        assert!(r.secure(), "{r:?}");
    }

    #[test]
    fn masked_spectre_v1_is_secure() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ if (x < guard) {{ temp &= pub_b[(pub_a[(x) & 15]) * 64]; }} }}"
        ));
        assert!(r.secure(), "{r:?}");
    }

    #[test]
    fn store_to_load_bypass_is_an_stl_leak() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ sec_key[(x) & 7] = 0; temp &= pub_b[(sec_key[(x) & 7]) * 64]; }}"
        ));
        assert!(r.leaks(LeakKind::Stl), "{r:?}");
        assert!(!r.arch_leak);
    }

    #[test]
    fn fenced_bypass_is_secure() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ sec_key[(x) & 7] = 0; lfence(); temp &= pub_b[(sec_key[(x) & 7]) * 64]; }}"
        ));
        assert!(!r.leaks(LeakKind::Stl), "{r:?}");
    }

    #[test]
    fn public_bypass_is_secure() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ scratch[(x) & 7] = y; temp &= pub_b[(scratch[(x) & 7]) * 64]; }}"
        ));
        assert!(r.secure(), "stale value is public: {r:?}");
    }

    #[test]
    fn cross_address_forwarding_is_a_psf_leak() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ scratch[0] = sec_key[(x) & 7]; scratch[1] = 0; temp &= pub_b[(scratch[1]) * 64]; }}"
        ));
        assert!(r.leaks(LeakKind::Psf), "{r:?}");
    }

    #[test]
    fn architectural_secret_read_is_an_arch_leak() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ temp &= pub_b[(sec_key[(x) & 7]) * 64]; }}"
        ));
        assert!(r.arch_leak, "{r:?}");
    }

    #[test]
    fn straightline_public_program_is_secure() {
        let r = oracle(&format!(
            "{GLOBALS} void victim(int x, int y) {{ scratch[(x) & 7] = y; temp &= pub_b[(pub_a[(y) & 15]) * 8]; }}"
        ));
        assert!(r.secure(), "{r:?}");
    }
}
