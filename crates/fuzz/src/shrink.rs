//! Greedy program minimization.
//!
//! Works on the generator AST, not on source text: candidate reductions
//! are (a) deleting any single statement, at any nesting depth, and
//! (b) splicing a guarded body into its parent (dropping the branch).
//! A reduction is kept when the caller's predicate still holds; the loop
//! runs to a fixpoint, so the result is 1-minimal with respect to these
//! operations. Deterministic: candidates are tried in program order.

use crate::gen::{Program, Stmt};

/// A path to a statement: indices into nested statement lists.
type Path = Vec<usize>;

fn collect_paths(stmts: &[Stmt], prefix: &Path, out: &mut Vec<Path>) {
    for (i, s) in stmts.iter().enumerate() {
        let mut p = prefix.clone();
        p.push(i);
        if let Stmt::GuardedIf { body, .. } = s {
            collect_paths(body, &p, out);
        }
        out.push(p);
    }
}

fn remove_at(stmts: &mut Vec<Stmt>, path: &[usize]) {
    match path {
        [] => {}
        [i] => {
            if *i < stmts.len() {
                stmts.remove(*i);
            }
        }
        [i, rest @ ..] => {
            if let Some(Stmt::GuardedIf { body, .. }) = stmts.get_mut(*i) {
                remove_at(body, rest);
            }
        }
    }
}

fn unwrap_if_at(stmts: &mut Vec<Stmt>, path: &[usize]) -> bool {
    match path {
        [] => false,
        [i] => match stmts.get(*i) {
            Some(Stmt::GuardedIf { body, .. }) => {
                let body = body.clone();
                stmts.splice(*i..=*i, body);
                true
            }
            _ => false,
        },
        [i, rest @ ..] => match stmts.get_mut(*i) {
            Some(Stmt::GuardedIf { body, .. }) => unwrap_if_at(body, rest),
            _ => false,
        },
    }
}

/// Shrinks `program` while `still_failing` holds, to a fixpoint.
pub fn shrink(program: &Program, still_failing: impl Fn(&Program) -> bool) -> Program {
    let mut cur = program.clone();
    loop {
        let mut paths = Vec::new();
        collect_paths(&cur.stmts, &Vec::new(), &mut paths);
        let mut progressed = false;
        for path in &paths {
            let mut cand = cur.clone();
            remove_at(&mut cand.stmts, path);
            if cand != cur && still_failing(&cand) {
                cur = cand;
                progressed = true;
                break;
            }
            let mut cand = cur.clone();
            if unwrap_if_at(&mut cand.stmts, path) && still_failing(&cand) {
                cur = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Arr, Expr};

    fn prog(stmts: Vec<Stmt>) -> Program {
        Program {
            seed: 0,
            index: 0,
            stmts,
        }
    }

    #[test]
    fn removes_irrelevant_statements() {
        let p = prog(vec![
            Stmt::Fence,
            Stmt::Transmit {
                idx: Expr::Const(1),
                scale: 8,
            },
            Stmt::SetGuard(Expr::Const(3)),
        ]);
        // Failure predicate: "contains a transmit".
        let shrunk = shrink(&p, |q| {
            q.stmts.iter().any(|s| matches!(s, Stmt::Transmit { .. }))
        });
        assert_eq!(shrunk.stmts.len(), 1);
        assert!(matches!(shrunk.stmts[0], Stmt::Transmit { .. }));
    }

    #[test]
    fn unwraps_guards_when_possible() {
        let p = prog(vec![Stmt::GuardedIf {
            lhs: Expr::Param(0),
            body: vec![Stmt::Store {
                arr: Arr::Scratch,
                idx: Expr::Const(0),
                val: Expr::Const(1),
            }],
        }]);
        let shrunk = shrink(&p, |q| {
            fn has_store(s: &[Stmt]) -> bool {
                s.iter().any(|s| match s {
                    Stmt::Store { .. } => true,
                    Stmt::GuardedIf { body, .. } => has_store(body),
                    _ => false,
                })
            }
            has_store(&q.stmts)
        });
        assert_eq!(shrunk.stmts.len(), 1);
        assert!(matches!(shrunk.stmts[0], Stmt::Store { .. }));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let p = crate::gen::generate(11, 5);
        let pred = |q: &Program| !q.stmts.is_empty();
        let a = shrink(&p, pred);
        let b = shrink(&p, pred);
        assert_eq!(a, b);
    }
}
