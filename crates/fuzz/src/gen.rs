//! Deterministic, seed-keyed random program generation (DESIGN.md §6i).
//!
//! Programs are drawn as small statement ASTs over a fixed global
//! environment and rendered to minic source, so every generated program
//! goes through the same front end as the corpus suites and the engines
//! see exactly the IR shape they were built for. The grammar is weighted
//! toward the three speculation gadget families (bounds-checked double
//! loads for PHT, store-then-reload for STL, cross-address forwarding for
//! PSF) plus secure variants (fences, masked indices) and benign filler,
//! so a sweep exercises both directions of the differential check.
//!
//! Determinism contract: program `i` of a batch depends only on
//! `(seed, i)` — each index derives its own SplitMix64 stream — so a batch
//! is byte-identical at every `--jobs` level and across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The fixed global environment every generated program lives in.
///
/// Sizes are powers of two so masked indexing stays in bounds; `sec_key`
/// follows the front end's secret naming convention.
pub const GLOBALS: &str =
    "int pub_a[16]; int pub_b[512]; int sec_key[8]; int scratch[8]; int guard; int temp;";

/// Arrays a generated statement may address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arr {
    /// Public input array (16 words).
    PubA,
    /// Public transmit array (512 words).
    PubB,
    /// Secret array (8 words).
    SecKey,
    /// Public scratch array (8 words).
    Scratch,
}

impl Arr {
    /// minic name.
    pub fn name(self) -> &'static str {
        match self {
            Arr::PubA => "pub_a",
            Arr::PubB => "pub_b",
            Arr::SecKey => "sec_key",
            Arr::Scratch => "scratch",
        }
    }

    /// Declared size in words.
    pub fn size(self) -> i64 {
        match self {
            Arr::PubA => 16,
            Arr::PubB => 512,
            Arr::SecKey => 8,
            Arr::Scratch => 8,
        }
    }
}

/// Index expressions (kept first-order so rendering and shrinking stay
/// simple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A function parameter (`x` or `y`).
    Param(usize),
    /// An integer literal.
    Const(i64),
    /// `arr[e]`.
    Load(Arr, Box<Expr>),
    /// `(e) & mask` — the in-bounds hardening idiom.
    Mask(Box<Expr>, i64),
    /// `(a) + (b)`.
    Add(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn render(&self, out: &mut String) {
        match self {
            Expr::Param(0) => out.push('x'),
            Expr::Param(_) => out.push('y'),
            Expr::Const(c) => {
                let _ = write!(out, "{c}");
            }
            Expr::Load(a, e) => {
                let _ = write!(out, "{}[", a.name());
                e.render(out);
                out.push(']');
            }
            Expr::Mask(e, m) => {
                out.push('(');
                e.render(out);
                let _ = write!(out, ") & {m}");
            }
            Expr::Add(a, b) => {
                out.push('(');
                a.render(out);
                out.push_str(") + (");
                b.render(out);
                out.push(')');
            }
        }
    }
}

/// Statements of the generated language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `if (cond_lhs < guard) { body }` — the PHT bounds-check shape.
    /// `guard` is zero-initialized, so the then-side is architecturally
    /// dead unless an earlier statement wrote `guard`.
    GuardedIf {
        /// Left-hand side of the comparison.
        lhs: Expr,
        /// Guarded body.
        body: Vec<Stmt>,
    },
    /// `temp &= pub_b[(idx) * scale];` — the transmitter idiom.
    Transmit {
        /// Transmitted index expression.
        idx: Expr,
        /// Element stride (cache-line spreading in the originals).
        scale: i64,
    },
    /// `arr[idx] = val;`
    Store {
        /// Target array.
        arr: Arr,
        /// Index expression.
        idx: Expr,
        /// Stored value.
        val: Expr,
    },
    /// `guard = val;` — opens the bounds check architecturally.
    SetGuard(Expr),
    /// `lfence();`
    Fence,
}

impl Stmt {
    fn render(&self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::GuardedIf { lhs, body } => {
                let _ = write!(out, "{pad}if (");
                lhs.render(out);
                out.push_str(" < guard) {\n");
                for s in body {
                    s.render(out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Transmit { idx, scale } => {
                let _ = write!(out, "{pad}temp &= pub_b[(");
                idx.render(out);
                let _ = writeln!(out, ") * {scale}];");
            }
            Stmt::Store { arr, idx, val } => {
                let _ = write!(out, "{pad}{}[", arr.name());
                idx.render(out);
                out.push_str("] = ");
                val.render(out);
                out.push_str(";\n");
            }
            Stmt::SetGuard(val) => {
                let _ = write!(out, "{pad}guard = ");
                val.render(out);
                out.push_str(";\n");
            }
            Stmt::Fence => {
                let _ = writeln!(out, "{pad}lfence();");
            }
        }
    }
}

/// A generated program: statement AST plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Sweep seed this program was derived from.
    pub seed: u64,
    /// Index within the sweep batch.
    pub index: usize,
    /// Top-level statements of `victim(int x, int y)`.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Renders the program as minic source.
    pub fn source(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{GLOBALS}");
        out.push_str("void victim(int x, int y) {\n");
        for s in &self.stmts {
            s.render(&mut out, 1);
        }
        out.push_str("}\n");
        out
    }

    /// Compiles the rendered source. The grammar only emits well-formed
    /// minic, so failure indicates a generator bug.
    ///
    /// # Errors
    ///
    /// Propagates the front end's error.
    pub fn compile(&self) -> Result<lcm_ir::Module, lcm_minic::CompileError> {
        lcm_minic::compile(&self.source())
    }
}

/// Derives the per-program RNG stream: mixes the index into the sweep
/// seed so neighbouring indices get unrelated streams regardless of the
/// batch's job split.
fn program_rng(seed: u64, index: usize) -> StdRng {
    let mixed = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .rotate_left(17);
    StdRng::seed_from_u64(mixed)
}

fn gen_param(rng: &mut StdRng) -> Expr {
    Expr::Param(rng.gen_range(0..2usize))
}

/// A public index expression, optionally hardened by masking.
fn gen_public_index(rng: &mut StdRng, arr: Arr) -> Expr {
    let p = gen_param(rng);
    match rng.gen_range(0..3u32) {
        0 => Expr::Mask(Box::new(p), arr.size() - 1),
        1 => Expr::Const(rng.gen_range(0..arr.size())),
        _ => Expr::Mask(
            Box::new(Expr::Add(
                Box::new(p),
                Box::new(Expr::Const(rng.gen_range(0..4))),
            )),
            arr.size() - 1,
        ),
    }
}

fn gen_transmit_scale(rng: &mut StdRng) -> i64 {
    *[1, 8, 64].get(rng.gen_range(0..3usize)).unwrap_or(&64)
}

/// One statement burst from a gadget family. Families deliberately mix
/// leaky and hardened variants of the same shape.
fn gen_family(rng: &mut StdRng, depth: usize, out: &mut Vec<Stmt>) {
    match rng.gen_range(0..10u32) {
        // PHT: bounds-checked double load, unmasked index — the v1 shape.
        0 | 1 => {
            let mut body = Vec::new();
            if rng.gen_bool(0.25) {
                body.push(Stmt::Fence); // hardened variant
            }
            body.push(Stmt::Transmit {
                idx: Expr::Load(Arr::PubA, Box::new(gen_param(rng))),
                scale: gen_transmit_scale(rng),
            });
            out.push(Stmt::GuardedIf {
                lhs: gen_param(rng),
                body,
            });
        }
        // PHT hardened: same shape with a masked inner index.
        2 => {
            let idx = Expr::Load(
                Arr::PubA,
                Box::new(Expr::Mask(Box::new(gen_param(rng)), Arr::PubA.size() - 1)),
            );
            out.push(Stmt::GuardedIf {
                lhs: gen_param(rng),
                body: vec![Stmt::Transmit {
                    idx,
                    scale: gen_transmit_scale(rng),
                }],
            });
        }
        // STL: overwrite a secret slot then reload it — the v4 shape.
        // The bypassed load reads the stale (secret) initial value.
        3 | 4 => {
            let idx = Expr::Mask(Box::new(gen_param(rng)), Arr::SecKey.size() - 1);
            out.push(Stmt::Store {
                arr: Arr::SecKey,
                idx: idx.clone(),
                val: Expr::Const(0),
            });
            if rng.gen_bool(0.25) {
                out.push(Stmt::Fence); // hardened variant
            }
            out.push(Stmt::Transmit {
                idx: Expr::Load(Arr::SecKey, Box::new(idx)),
                scale: gen_transmit_scale(rng),
            });
        }
        // STL public twin: same shape over a public array; the stale
        // value is public, so the oracle calls it secure while the
        // engines may still flag it (expected overapproximation).
        5 => {
            let idx = Expr::Mask(Box::new(gen_param(rng)), Arr::Scratch.size() - 1);
            out.push(Stmt::Store {
                arr: Arr::Scratch,
                idx: idx.clone(),
                val: gen_param(rng),
            });
            out.push(Stmt::Transmit {
                idx: Expr::Load(Arr::Scratch, Box::new(idx)),
                scale: gen_transmit_scale(rng),
            });
        }
        // PSF: park a secret in scratch, then transmit a *different*
        // scratch slot — forwarding across the address mismatch leaks.
        6 | 7 => {
            let secret = Expr::Load(
                Arr::SecKey,
                Box::new(Expr::Mask(Box::new(gen_param(rng)), Arr::SecKey.size() - 1)),
            );
            out.push(Stmt::Store {
                arr: Arr::Scratch,
                idx: Expr::Const(0),
                val: secret,
            });
            out.push(Stmt::Store {
                arr: Arr::Scratch,
                idx: Expr::Const(1),
                val: Expr::Const(0),
            });
            if rng.gen_bool(0.2) {
                out.push(Stmt::Fence); // hardened variant
            }
            out.push(Stmt::Transmit {
                idx: Expr::Load(Arr::Scratch, Box::new(Expr::Const(1))),
                scale: gen_transmit_scale(rng),
            });
        }
        // Benign filler: public stores, guard writes, safe transmits.
        _ => match rng.gen_range(0..3u32) {
            0 => out.push(Stmt::Store {
                arr: Arr::Scratch,
                idx: gen_public_index(rng, Arr::Scratch),
                val: gen_param(rng),
            }),
            1 => out.push(Stmt::SetGuard(Expr::Mask(
                Box::new(gen_param(rng)),
                Arr::PubA.size() - 1,
            ))),
            _ => out.push(Stmt::Transmit {
                idx: gen_public_index(rng, Arr::PubA),
                scale: gen_transmit_scale(rng),
            }),
        },
    }
    // Occasionally nest a family inside a fresh bounds check.
    if depth == 0 && rng.gen_bool(0.15) {
        let mut body = Vec::new();
        gen_family(rng, depth + 1, &mut body);
        out.push(Stmt::GuardedIf {
            lhs: gen_param(rng),
            body,
        });
    }
}

/// Generates program `index` of the sweep keyed by `seed`.
pub fn generate(seed: u64, index: usize) -> Program {
    let mut rng = program_rng(seed, index);
    let mut stmts = Vec::new();
    let bursts = rng.gen_range(1..=3u32);
    for _ in 0..bursts {
        gen_family(&mut rng, 0, &mut stmts);
    }
    Program { seed, index, stmts }
}

/// Generates a batch of `count` programs in parallel. The result is
/// byte-identical for every `jobs` value because each program depends
/// only on `(seed, index)`.
pub fn generate_batch(seed: u64, count: usize, jobs: usize) -> Vec<Program> {
    let indices: Vec<usize> = (0..count).collect();
    lcm_core::par::map_indexed(&indices, jobs, |_, &i| generate(seed, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(9, 17);
        let b = generate(9, 17);
        assert_eq!(a, b);
        assert_eq!(a.source(), b.source());
    }

    #[test]
    fn batches_are_job_invariant() {
        let s1 = generate_batch(9, 32, 1);
        let s4 = generate_batch(9, 32, 4);
        let s8 = generate_batch(9, 32, 8);
        assert_eq!(s1, s4);
        assert_eq!(s1, s8);
    }

    #[test]
    fn every_generated_program_compiles() {
        for i in 0..128 {
            let p = generate(7, i);
            let m = p
                .compile()
                .unwrap_or_else(|e| panic!("program {i} failed to compile: {e:?}\n{}", p.source()));
            assert!(m.function("victim").is_some());
            let (_, sec) = m.global("sec_key").expect("secret global");
            assert!(sec.secret, "naming convention marks sec_key secret");
        }
    }

    #[test]
    fn distinct_indices_differ() {
        let distinct = (0..64)
            .map(|i| generate(3, i).source())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            distinct.len() > 32,
            "only {} distinct programs",
            distinct.len()
        );
    }
}
