//! The differential harness: generated programs → oracle vs. engines,
//! repair re-verification, and fence-set minimality (DESIGN.md §6i).
//!
//! The comparison is directional. The engines are static
//! over-approximations, so "engine finds a leak the oracle cannot
//! witness" is expected and merely counted. The soundness obligation is
//! the other way: a program the oracle *concretely* proves leaky under
//! primitive P, on which engine P reports clean, is a **mismatch** — it
//! would be a missed Spectre leak. Mismatches are shrunk to 1-minimal
//! reproducers and surfaced as minic source ready to be folded into
//! `crates/corpus`.

use lcm_detect::{repair_all, Detector, DetectorConfig, EngineKind};
use lcm_ir::{Inst, Module};
use lcm_sat::cnf::Cnf;
use lcm_sat::Lit;

use crate::gen::{generate, Program};
use crate::oracle::{self, LeakKind, OracleConfig, OracleReport};
use crate::shrink::shrink;

/// The three engine/primitive pairs the harness cross-checks.
pub const PRIMITIVES: [(LeakKind, EngineKind); 3] = [
    (LeakKind::Pht, EngineKind::Pht),
    (LeakKind::Stl, EngineKind::Stl),
    (LeakKind::Psf, EngineKind::Psf),
];

/// Sweep parameters (`lcm-cli fuzz`).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Batch seed.
    pub seed: u64,
    /// Number of programs.
    pub count: usize,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
    /// Cheaper oracle profile and smaller repair/minimality sample.
    pub quick: bool,
    /// Repaired programs to run the fence-minimality certificate on.
    pub minimality_sample: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 9,
            count: 256,
            jobs: 0,
            quick: false,
            minimality_sample: 8,
        }
    }
}

impl FuzzConfig {
    fn oracle_config(&self) -> OracleConfig {
        if self.quick {
            OracleConfig::quick()
        } else {
            OracleConfig::default()
        }
    }
}

/// One engine-vs-oracle disagreement, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Batch index of the offending program.
    pub index: usize,
    /// Batch seed (reproduce with `generate(seed, index)`).
    pub seed: u64,
    /// The engine that missed the leak.
    pub engine: EngineKind,
    /// Original source.
    pub source: String,
    /// 1-minimal shrunk source.
    pub shrunk_source: String,
}

/// Per-program differential result.
#[derive(Debug, Clone)]
pub struct Eval {
    /// The generated program.
    pub program: Program,
    /// Oracle verdict.
    pub oracle: OracleReport,
    /// Engine cleanliness, in [`PRIMITIVES`] order.
    pub engine_clean: [bool; 3],
    /// Engines that missed an oracle-witnessed leak.
    pub mismatched: Vec<EngineKind>,
    /// Engine findings the oracle could not witness (expected
    /// over-approximation).
    pub overapprox: u32,
}

/// Fence-minimality certificate for one repaired module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalityReport {
    /// Fences in the repaired module.
    pub fences: usize,
    /// Fences whose individual removal reintroduces a finding.
    pub necessary: usize,
    /// Minimum feasible fence count per the cardinality search.
    pub sat_minimum: usize,
    /// `true` when keeping exactly the necessary set re-verifies clean,
    /// i.e. the fence set is provably minimum (fence removal is monotone:
    /// fewer fences never remove findings, so feasible sets are
    /// upward-closed and the necessary set, when feasible, is *the*
    /// minimum).
    pub minimal: bool,
}

/// Aggregated sweep outcome.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Programs generated and evaluated.
    pub programs: usize,
    /// Programs whose rendered source failed to compile (generator bug).
    pub compile_failures: usize,
    /// Oracle: programs with an architectural (non-transient) leak.
    pub arch_leaky: usize,
    /// Oracle: programs with at least one witnessed transient leak.
    pub spec_leaky: usize,
    /// Oracle: programs with no witnessed leak at all.
    pub secure: usize,
    /// Engine findings per primitive, in [`PRIMITIVES`] order.
    pub engine_flagged: [usize; 3],
    /// Total engine-finds-oracle-silent cases (expected direction).
    pub overapprox: u64,
    /// Soundness-direction disagreements (must be empty).
    pub mismatches: Vec<Mismatch>,
    /// Engine-flagged programs put through `repair_all`.
    pub repairs_checked: usize,
    /// ... of which re-verified clean under all three engines.
    pub repairs_clean: usize,
    /// ... and were also re-confirmed leak-free by the oracle.
    pub repairs_oracle_clean: usize,
    /// Batch indices whose repair failed re-verification (must be empty).
    pub repair_failures: Vec<usize>,
    /// Minimality certificates attempted.
    pub minimality_checked: usize,
    /// ... of which certified minimum.
    pub minimality_certified: usize,
}

impl SweepReport {
    /// `true` when the sweep satisfies every differential obligation.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty() && self.repair_failures.is_empty() && self.compile_failures == 0
    }
}

fn fuzz_programs_counter() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::FUZZ_PROGRAMS,
            "Programs generated and analyzed by the differential fuzz harness",
        )
    })
}

fn fuzz_mismatches_counter() -> &'static lcm_obs::metrics::Counter {
    static C: std::sync::OnceLock<lcm_obs::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::FUZZ_MISMATCHES,
            "Engine-vs-oracle disagreements found by the fuzz harness",
        )
    })
}

/// Evaluates one program against oracle and all three engines.
pub fn evaluate(program: &Program, det: &Detector, ocfg: OracleConfig) -> Option<Eval> {
    let module = program.compile().ok()?;
    let oracle = oracle::analyze(&module, "victim", ocfg);
    let mut engine_clean = [true; 3];
    let mut mismatched = Vec::new();
    let mut overapprox = 0;
    for (i, (kind, engine)) in PRIMITIVES.iter().enumerate() {
        engine_clean[i] = det.analyze_module(&module, *engine).is_clean();
        match (oracle.leaks(*kind), engine_clean[i]) {
            (true, true) => mismatched.push(*engine),
            (false, false) => overapprox += 1,
            _ => {}
        }
    }
    Some(Eval {
        program: program.clone(),
        oracle,
        engine_clean,
        mismatched,
        overapprox,
    })
}

/// `true` if the oracle still witnesses a `kind` leak the engine misses
/// — the shrinking predicate.
fn still_mismatching(p: &Program, det: &Detector, ocfg: OracleConfig, kind: LeakKind) -> bool {
    let module = match p.compile() {
        Ok(m) => m,
        Err(_) => return false,
    };
    let engine = PRIMITIVES
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, e)| *e)
        .unwrap_or(EngineKind::Pht);
    oracle::analyze(&module, "victim", ocfg).leaks(kind)
        && det.analyze_module(&module, engine).is_clean()
}

/// Every fence site in a module: `(function, block, position)`.
fn fence_sites(module: &Module) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (fi, f) in module.functions.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (pi, &iid) in b.insts.iter().enumerate() {
                if matches!(f.insts[iid.0 as usize], Inst::Fence) {
                    out.push((fi, bi, pi));
                }
            }
        }
    }
    out
}

/// The module with only the selected fence sites kept.
fn with_fence_subset(module: &Module, sites: &[(usize, usize, usize)], keep: &[bool]) -> Module {
    let mut out = module.clone();
    // Remove back-to-front so positions stay valid.
    for (i, &(fi, bi, pi)) in sites.iter().enumerate().rev() {
        if !keep[i] {
            out.functions[fi].blocks[bi].insts.remove(pi);
        }
    }
    out
}

fn clean_under_all(module: &Module, det: &Detector) -> bool {
    PRIMITIVES
        .iter()
        .all(|(_, e)| det.analyze_module(module, *e).is_clean())
}

/// Certifies that a repaired module's fence set is minimum.
///
/// Drop-one analysis classifies each fence as necessary or not; the SAT
/// cardinality layer then searches for the smallest feasible fence count
/// (unit clauses for necessary fences + a descending at-most-`k` bound —
/// the MaxSAT-style part), and the winning candidate set is validated by
/// re-analysis. Fence removal is monotone, so a validated necessary set
/// is the unique minimum.
pub fn certify_minimal_fences(repaired: &Module, det: &Detector) -> MinimalityReport {
    let sites = fence_sites(repaired);
    let n = sites.len();
    if n == 0 {
        return MinimalityReport {
            fences: 0,
            necessary: 0,
            sat_minimum: 0,
            minimal: true,
        };
    }
    let mut necessary = vec![false; n];
    for i in 0..n {
        let mut keep = vec![true; n];
        keep[i] = false;
        let candidate = with_fence_subset(repaired, &sites, &keep);
        if !clean_under_all(&candidate, det) {
            necessary[i] = true;
        }
    }
    // MaxSAT-style descending-k search over keep-variables.
    let mut base = Cnf::new();
    let keep_lits: Vec<Lit> = (0..n).map(|_| base.fresh()).collect();
    for (i, &nec) in necessary.iter().enumerate() {
        if nec {
            base.assert_lit(keep_lits[i]);
        }
    }
    let mut sat_minimum = n;
    while sat_minimum > 0 {
        let mut trial = base.clone();
        trial.assert_at_most_k(&keep_lits, sat_minimum - 1);
        if trial.solver_mut().solve().is_sat() {
            sat_minimum -= 1;
        } else {
            break;
        }
    }
    let candidate = with_fence_subset(repaired, &sites, &necessary);
    let necessary_count = necessary.iter().filter(|&&b| b).count();
    let minimal = sat_minimum == necessary_count && clean_under_all(&candidate, det);
    MinimalityReport {
        fences: n,
        necessary: necessary_count,
        sat_minimum,
        minimal,
    }
}

/// Runs the full differential sweep.
pub fn run_sweep(cfg: &FuzzConfig) -> SweepReport {
    let det = Detector::new(DetectorConfig::default());
    let ocfg = cfg.oracle_config();
    let indices: Vec<usize> = (0..cfg.count).collect();
    let evals: Vec<Option<Eval>> = lcm_core::par::map_indexed(&indices, cfg.jobs, |_, &i| {
        let det = Detector::new(DetectorConfig::default());
        evaluate(&generate(cfg.seed, i), &det, ocfg)
    });

    let mut report = SweepReport {
        programs: cfg.count,
        ..SweepReport::default()
    };
    fuzz_programs_counter().add(cfg.count as u64);

    let mut repair_candidates: Vec<(usize, Module)> = Vec::new();
    for (i, eval) in evals.iter().enumerate() {
        let eval = match eval {
            Some(e) => e,
            None => {
                report.compile_failures += 1;
                continue;
            }
        };
        if eval.oracle.arch_leak {
            report.arch_leaky += 1;
        }
        if !eval.oracle.leaks.is_empty() {
            report.spec_leaky += 1;
        }
        if eval.oracle.secure() {
            report.secure += 1;
        }
        report.overapprox += u64::from(eval.overapprox);
        let mut flagged = false;
        for (j, clean) in eval.engine_clean.iter().enumerate() {
            if !clean {
                report.engine_flagged[j] += 1;
                flagged = true;
            }
        }
        if flagged {
            if let Ok(m) = eval.program.compile() {
                repair_candidates.push((i, m));
            }
        }
        for &engine in &eval.mismatched {
            let kind = PRIMITIVES
                .iter()
                .find(|(_, e)| *e == engine)
                .map(|(k, _)| *k)
                .unwrap_or(LeakKind::Pht);
            let shrunk = shrink(&eval.program, |p| still_mismatching(p, &det, ocfg, kind));
            fuzz_mismatches_counter().inc();
            report.mismatches.push(Mismatch {
                index: i,
                seed: cfg.seed,
                engine,
                source: eval.program.source(),
                shrunk_source: shrunk.source(),
            });
        }
    }

    // Repair re-verification: every engine-flagged program must repair to
    // a module that is clean under all three engines and, independently,
    // leak-free under the oracle.
    let repair_cap = if cfg.quick { 16 } else { usize::MAX };
    let minimality_cap = if cfg.quick {
        cfg.minimality_sample.min(3)
    } else {
        cfg.minimality_sample
    };
    for (i, module) in repair_candidates.into_iter().take(repair_cap) {
        report.repairs_checked += 1;
        let (fixed, _fences) = repair_all(&module, &det);
        if clean_under_all(&fixed, &det) {
            report.repairs_clean += 1;
        } else {
            report.repair_failures.push(i);
            continue;
        }
        let re_oracle = oracle::analyze(&fixed, "victim", ocfg);
        if re_oracle.leaks.is_empty() {
            report.repairs_oracle_clean += 1;
        } else {
            report.repair_failures.push(i);
            continue;
        }
        if report.minimality_checked < minimality_cap {
            report.minimality_checked += 1;
            if certify_minimal_fences(&fixed, &det).minimal {
                report.minimality_certified += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_gadgets_do_not_mismatch() {
        let det = Detector::new(DetectorConfig::default());
        let ocfg = OracleConfig::quick();
        for i in 0..48 {
            let p = generate(9, i);
            let e = evaluate(&p, &det, ocfg).expect("compiles");
            assert!(
                e.mismatched.is_empty(),
                "program {i} mismatched {:?}:\n{}",
                e.mismatched,
                p.source()
            );
        }
    }

    #[test]
    fn sweep_aggregates_and_stays_clean() {
        let cfg = FuzzConfig {
            seed: 9,
            count: 48,
            jobs: 2,
            quick: true,
            minimality_sample: 2,
        };
        let r = run_sweep(&cfg);
        assert!(r.ok(), "{r:?}");
        assert!(r.spec_leaky > 0, "sweep should witness real leaks: {r:?}");
        assert!(r.secure > 0, "sweep should include secure programs: {r:?}");
        assert!(r.repairs_checked > 0, "{r:?}");
        assert_eq!(r.repairs_clean, r.repairs_checked, "{r:?}");
    }

    #[test]
    fn minimality_certificate_on_repaired_v1() {
        let src = "int A[16]; int B[256]; int size_A; int tmp;\
                   void victim(int y) { if (y < size_A) { tmp &= B[A[y]]; } }";
        let m = lcm_minic::compile(src).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let (fixed, fences) = repair_all(&m, &det);
        assert!(fences >= 1);
        let cert = certify_minimal_fences(&fixed, &det);
        assert!(cert.minimal, "{cert:?}");
        assert_eq!(cert.necessary, cert.sat_minimum);
    }

    #[test]
    fn spurious_fence_is_not_minimal() {
        // A clean program with a gratuitous fence: zero fences suffice.
        let src = "int A[4]; int t; void victim(int x) { lfence(); t = A[0]; }";
        let m = lcm_minic::compile(src).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let cert = certify_minimal_fences(&m, &det);
        assert_eq!(cert.fences, 1);
        assert_eq!(cert.necessary, 0);
        assert_eq!(cert.sat_minimum, 0);
        assert!(cert.minimal, "the empty set is feasible and minimum");
    }
}
