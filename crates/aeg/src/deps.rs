//! Dependency chains over the S-AEG (§5.3).
//!
//! An `addr` edge in the transmitter patterns of Table 1 is realised as
//! zero or more `data.rf` steps followed by one `addr` step —
//! `(data.rf)*.addr` — because a read's value may be stored and re-loaded
//! any number of times before its use in an address computation. This
//! module materialises those chains as relations over S-AEG events.

use lcm_relalg::Relation;

use crate::addr::{alias, AliasResult};
use crate::build::{EventId, EventKind, Saeg};

/// The generalized address-dependency relations: `(data.rf)* ; addr`.
#[derive(Debug, Clone)]
pub struct Gaddr {
    /// All generalized address dependencies.
    pub plain: Relation,
    /// The subset whose final step is an `addr_gep` dependency (index into
    /// a known base — what Clou-pht requires for the first hop of a
    /// universal pattern, §5.3).
    pub gep: Relation,
    /// The `data.rf` step relation itself (useful for diagnostics).
    pub data_rf: Relation,
}

/// `data.rf` edges: `l0 → l` when some store `s` carries `l0`'s value
/// (`data`) and load `l` may architecturally read from `s` (`rf`).
///
/// Havoc events participate on both sides (they may act as a store or a
/// load on any of their pointer operands).
pub fn data_rf_edges(saeg: &Saeg) -> Relation {
    let n = saeg.events.len();
    let mut rel = Relation::empty(n);
    for s in saeg.stores() {
        if s.value_deps.is_empty() && s.kind != EventKind::Havoc {
            continue;
        }
        for l in saeg.loads() {
            if !saeg.precedes(s.id, l.id) {
                continue;
            }
            let may = match (s.addr, l.addr) {
                (Some(a), Some(b)) => alias(a, b) != AliasResult::No,
                _ => true, // havoc side: may touch anything
            };
            if !may {
                continue;
            }
            for &v in &s.value_deps {
                rel.insert(v.0, l.id.0);
            }
            if s.kind == EventKind::Havoc {
                // A havoc store forwards whatever fed its pointer args.
                for &(v, _) in &s.addr_deps {
                    rel.insert(v.0, l.id.0);
                }
            }
        }
    }
    rel
}

/// Direct `addr` edges (`dep → event`), with the gep subset.
pub fn addr_edges(saeg: &Saeg) -> (Relation, Relation) {
    let n = saeg.events.len();
    let mut all = Relation::empty(n);
    let mut gep = Relation::empty(n);
    for e in &saeg.events {
        for &(d, via_gep) in &e.addr_deps {
            all.insert(d.0, e.id.0);
            if via_gep {
                gep.insert(d.0, e.id.0);
            }
        }
    }
    (all, gep)
}

/// Computes the generalized address-dependency relations.
pub fn generalized_addr(saeg: &Saeg) -> Gaddr {
    let dr = data_rf_edges(saeg);
    let star = dr.reflexive_transitive_closure();
    let (addr_all, addr_gep) = addr_edges(saeg);
    // compose_into writes straight into the retained relations instead
    // of allocating intermediates.
    let mut plain = Relation::empty(saeg.events.len());
    let mut gep = Relation::empty(saeg.events.len());
    star.compose_into(&addr_all, &mut plain);
    star.compose_into(&addr_gep, &mut gep);
    Gaddr {
        plain,
        gep,
        data_rf: dr,
    }
}

/// `ctrl` edges: `load → event` when the load feeds the condition of a
/// branch the event is *control-dependent* on — reachable from one
/// successor but not the other (§2.1.3: "whether to execute the
/// MemoryEvent depends syntactically on the value read"). Join-block
/// events execute either way and carry no control dependency.
pub fn ctrl_edges(saeg: &Saeg) -> Relation {
    let n = saeg.events.len();
    let mut rel = Relation::empty(n);
    for br in &saeg.branches {
        for e in &saeg.events {
            let via_then = saeg.block_reaches(br.then_bb, e.block);
            let via_else = saeg.block_reaches(br.else_bb, e.block);
            if via_then == via_else {
                continue;
            }
            for &d in &br.cond_deps {
                rel.insert(d.0, e.id.0);
            }
        }
    }
    rel
}

/// Convenience: the accesses (sources) of generalized addr edges into `t`.
pub fn gaddr_sources(g: &Gaddr, t: EventId) -> Vec<EventId> {
    g.plain.predecessors(t.0).map(EventId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::speculation::SpeculationConfig;

    fn saeg_of(src: &str, f: &str) -> Saeg {
        let m = lcm_minic::compile(src).unwrap();
        Saeg::build(&m, f, SpeculationConfig::default()).unwrap()
    }

    #[test]
    fn spill_reload_chain_spans_data_rf() {
        // -O0: y is spilled to the stack and reloaded before indexing —
        // gaddr must span the spill: param-load -> (data.rf) -> reload ->
        // addr_gep -> A[y] load.
        let s = saeg_of("int A[16]; int t; void f(int y) { t = A[y]; }", "f");
        let g = generalized_addr(&s);
        // The A[y] load is the last load.
        let a_load = s
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load && !e.addr_deps.is_empty())
            .unwrap();
        assert!(
            !gaddr_sources(&g, a_load.id).is_empty(),
            "A[y] has generalized addr sources"
        );
        // And the final hop is a gep: the gep-restricted relation agrees.
        assert!(g.gep.predecessors(a_load.id.0).next().is_some());
    }

    #[test]
    fn two_level_chain_for_universal_pattern() {
        // B[A[y]]: reload(y) -addr_gep-> load A[y] -addr_gep-> load B[..].
        let s = saeg_of(
            "int A[16]; int B[256]; int t; void f(int y) { t = B[A[y]]; }",
            "f",
        );
        let g = generalized_addr(&s);
        let b_load = s
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load)
            .unwrap();
        let accesses = gaddr_sources(&g, b_load.id);
        assert!(!accesses.is_empty());
        // Some access itself has gaddr sources: the universal shape.
        let universal = accesses.iter().any(|&a| !gaddr_sources(&g, a).is_empty());
        assert!(universal, "index -> access -> transmit chain found");
    }

    #[test]
    fn no_alias_store_does_not_forward() {
        // Store to A[0], load from A[1] (distinct constants): no data.rf.
        let s = saeg_of(
            "int A[8]; int t; void f(int v) { A[0] = v; t = A[1]; }",
            "f",
        );
        let dr = data_rf_edges(&s);
        // The spill-store of v forwards to the reload of v (same alloca),
        // but not via the A[0]/A[1] pair. Check: no edge whose target is
        // the A[1] load.
        let a1_load = s
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load)
            .unwrap();
        assert!(dr.predecessors(a1_load.id.0).next().is_none());
    }

    #[test]
    fn ctrl_edges_reach_branch_shadow() {
        let s = saeg_of(
            "int A[8]; int size; int t; void f(int y) { if (y < size) { t = A[0]; } }",
            "f",
        );
        let ctrl = ctrl_edges(&s);
        let a_load = s
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load)
            .unwrap();
        assert!(
            ctrl.predecessors(a_load.id.0).next().is_some(),
            "loads feeding the bounds check control the body load"
        );
    }

    #[test]
    fn havoc_participates_in_chains() {
        let s = saeg_of(
            "int A[16]; int t; void f(int *p) { ext(p); t = A[0]; }",
            "f",
        );
        let dr = data_rf_edges(&s);
        // The havoc may store to anything, so the A[0] load may read from
        // it; but the havoc has no value deps or addr deps with events...
        // p's spill-load feeds its ptr args, so an edge may exist.
        let _ = dr; // structural smoke test: no panic, relation built
        assert!(s.events.iter().any(|e| e.kind == EventKind::Havoc));
    }
}
