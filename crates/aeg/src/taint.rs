//! Attacker-control taint tracking (§5.3).
//!
//! Clou assumes all top-level function inputs and all **non-pointer** data
//! in memory are attacker-controlled, while (architecturally stored) base
//! pointers are not. Taint propagates through arithmetic and address
//! computation.

use lcm_ir::{Function, Inst, Ty, Value};

/// Returns `true` if the value is attacker-controlled under Clou's
/// assumptions: its operand chain contains a function parameter or a
/// non-pointer-typed load (any non-pointer datum in memory is assumed
/// attacker-controlled).
pub fn attacker_controlled(f: &Function, v: Value) -> bool {
    controlled(f, v, 0)
}

fn controlled(f: &Function, v: Value, depth: usize) -> bool {
    if depth > 64 {
        return true; // conservative on pathological chains
    }
    match f.inst(v) {
        Inst::Param { .. } => true,
        Inst::Load { ty, .. } | Inst::Call { ty, .. } | Inst::Havoc { ty, .. } => *ty == Ty::Int,
        Inst::Const(_) | Inst::GlobalAddr(_) | Inst::Alloca { .. } | Inst::Fence => false,
        Inst::Gep { base, index, .. } => {
            controlled(f, *base, depth + 1) || controlled(f, *index, depth + 1)
        }
        Inst::Bin { lhs, rhs, .. } => {
            controlled(f, *lhs, depth + 1) || controlled(f, *rhs, depth + 1)
        }
        Inst::Store { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::{Function, GlobalId, Inst};

    #[test]
    fn params_are_controlled() {
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let x = f.param(0);
        assert!(attacker_controlled(&f, x));
    }

    #[test]
    fn constants_and_bases_are_not() {
        let mut f = Function::new("f", &[]);
        let c = f.iconst(7);
        let g = f.global_addr(GlobalId(0));
        assert!(!attacker_controlled(&f, c));
        assert!(!attacker_controlled(&f, g));
    }

    #[test]
    fn int_loads_are_controlled_pointer_loads_are_not() {
        let mut f = Function::new("f", &[("p", Ty::Ptr)]);
        let e = f.entry();
        let p = f.param(0);
        let li = f.push(
            e,
            Inst::Load {
                addr: p,
                ty: Ty::Int,
            },
        );
        let lp = f.push(
            e,
            Inst::Load {
                addr: p,
                ty: Ty::Ptr,
            },
        );
        assert!(attacker_controlled(&f, li));
        assert!(!attacker_controlled(&f, lp));
    }

    #[test]
    fn taint_propagates_through_arithmetic_and_gep() {
        let mut f = Function::new("f", &[("x", Ty::Int)]);
        let x = f.param(0);
        let c = f.iconst(2);
        let mul = f.bin(lcm_ir::BinOp::Mul, x, c);
        let g = f.global_addr(GlobalId(0));
        let addr = f.gep(g, mul);
        assert!(attacker_controlled(&f, mul));
        assert!(attacker_controlled(&f, addr));
        let clean = f.gep(g, c);
        assert!(!attacker_controlled(&f, clean));
    }
}
