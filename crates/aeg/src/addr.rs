//! Symbolic addresses and the alias oracle (§5.2 "Alias Analysis").
//!
//! Clou applies LLVM's alias analysis selectively: inequality facts are
//! only used where valid under the CFG→A-CFG transformation, all stack
//! allocations are distinct, and **no alias fact survives transient
//! execution**. This module mirrors that: a conservative, syntactic
//! points-to analysis producing [`AliasResult`]s, with the caller deciding
//! whether architectural facts apply.

use std::collections::HashMap;

use lcm_ir::{Function, Inst, InstId, Value};

/// The memory region an address points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// A module global.
    Global(u32),
    /// A stack slot (identified by its `alloca` instruction).
    Alloca(u32),
    /// A pointer loaded from memory or received as a parameter — points
    /// anywhere.
    Unknown,
}

/// The index part of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Index {
    /// A compile-time constant offset.
    Const(i64),
    /// A symbolic offset, identified by the value computing it (two equal
    /// ids are the same offset).
    Sym(u32),
    /// An offset combined from several geps / unknown arithmetic.
    Opaque,
}

/// A symbolic address: region + offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymAddr {
    /// Target region.
    pub region: Region,
    /// Offset within the region.
    pub index: Index,
}

/// Three-valued aliasing verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasResult {
    /// Definitely the same address.
    Must,
    /// Definitely different addresses (architecturally).
    No,
    /// Unknown.
    May,
}

/// Computes the symbolic address of a pointer value by walking the pure
/// operand graph.
pub fn symbolic_addr(f: &Function, v: Value) -> SymAddr {
    match f.inst(v) {
        Inst::GlobalAddr(g) => SymAddr {
            region: Region::Global(g.0),
            index: Index::Const(0),
        },
        Inst::Alloca { .. } => SymAddr {
            region: Region::Alloca(v.0),
            index: Index::Const(0),
        },
        Inst::Gep { base, index, .. } => {
            let b = symbolic_addr(f, *base);
            let idx = match f.inst(*index) {
                Inst::Const(c) => Index::Const(*c),
                _ => Index::Sym(index.0),
            };
            match b.index {
                Index::Const(0) => SymAddr {
                    region: b.region,
                    index: idx,
                },
                Index::Const(c) => match idx {
                    Index::Const(c2) => SymAddr {
                        region: b.region,
                        index: Index::Const(c + c2),
                    },
                    _ => SymAddr {
                        region: b.region,
                        index: Index::Opaque,
                    },
                },
                _ => SymAddr {
                    region: b.region,
                    index: Index::Opaque,
                },
            }
        }
        // A loaded pointer, parameter, call result, or arithmetic: unknown.
        _ => SymAddr {
            region: Region::Unknown,
            index: Index::Opaque,
        },
    }
}

/// Architectural aliasing between two symbolic addresses.
///
/// `Unknown` regions may alias anything (Clou leaves `comx`
/// under-constrained rather than risking false negatives). Distinct
/// globals and distinct allocas never alias; same region with distinct
/// constant offsets never aliases; same region with identical symbolic
/// offsets must alias.
pub fn alias(a: SymAddr, b: SymAddr) -> AliasResult {
    match (a.region, b.region) {
        (Region::Unknown, _) | (_, Region::Unknown) => AliasResult::May,
        (ra, rb) if ra != rb => AliasResult::No,
        _ => match (a.index, b.index) {
            (Index::Const(x), Index::Const(y)) => {
                if x == y {
                    AliasResult::Must
                } else {
                    AliasResult::No
                }
            }
            (Index::Sym(x), Index::Sym(y)) if x == y => AliasResult::Must,
            _ => AliasResult::May,
        },
    }
}

/// A memoizing alias oracle over one function.
///
/// [`symbolic_addr`] re-walks the pure operand graph on every call; the
/// detection engines and the haunted baseline ask for the same values'
/// addresses once per candidate pair (haunted: once per *path* per
/// pair), so the walk dominates on gep-heavy code. The oracle caches
/// `Value → SymAddr` per function and memoizes the sub-walks of nested
/// geps too, making repeated queries O(1).
#[derive(Debug)]
pub struct AddrOracle<'f> {
    f: &'f Function,
    addr_memo: HashMap<u32, SymAddr>,
    /// Queries answered (including hits).
    queries: u64,
    /// Queries answered from the memo.
    hits: u64,
}

impl<'f> AddrOracle<'f> {
    /// An empty oracle over `f`.
    pub fn new(f: &'f Function) -> Self {
        AddrOracle {
            f,
            addr_memo: HashMap::new(),
            queries: 0,
            hits: 0,
        }
    }

    /// The memoized symbolic address of `v`.
    pub fn addr(&mut self, v: Value) -> SymAddr {
        self.queries += 1;
        if let Some(&a) = self.addr_memo.get(&v.0) {
            self.hits += 1;
            return a;
        }
        let f = self.f;
        let a = match f.inst(v) {
            Inst::Gep { base, index, .. } => {
                // Memoize the base sub-walk too: nested geps share bases.
                let b = self.addr(*base);
                let idx = match f.inst(*index) {
                    Inst::Const(c) => Index::Const(*c),
                    _ => Index::Sym(index.0),
                };
                match b.index {
                    Index::Const(0) => SymAddr {
                        region: b.region,
                        index: idx,
                    },
                    Index::Const(c) => match idx {
                        Index::Const(c2) => SymAddr {
                            region: b.region,
                            index: Index::Const(c + c2),
                        },
                        _ => SymAddr {
                            region: b.region,
                            index: Index::Opaque,
                        },
                    },
                    _ => SymAddr {
                        region: b.region,
                        index: Index::Opaque,
                    },
                }
            }
            _ => symbolic_addr(f, v),
        };
        self.addr_memo.insert(v.0, a);
        a
    }

    /// Architectural aliasing between the addresses of two values.
    pub fn alias_values(&mut self, a: Value, b: Value) -> AliasResult {
        alias(self.addr(a), self.addr(b))
    }

    /// `(queries, memo_hits)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.queries, self.hits)
    }
}

/// The set of *load instructions* feeding a value through pure nodes,
/// each tagged with whether every step into it from the root passes
/// through a gep **index** operand (the `addr_gep` discriminator of §5.2).
///
/// Returns `(load, via_gep_index)` pairs. A load reachable both ways is
/// reported with `via_gep_index = false` taking precedence (base-pointer
/// control is the stronger capability).
pub fn feeding_loads(f: &Function, root: Value) -> Vec<(InstId, bool)> {
    let mut out: Vec<(InstId, bool)> = Vec::new();
    collect(f, root, false, &mut out, 0);
    // Deduplicate, base-control (false) wins.
    out.sort_by_key(|&(id, gep)| (id, gep));
    out.dedup_by_key(|&mut (id, _)| id);
    out
}

fn collect(f: &Function, v: Value, via_gep: bool, out: &mut Vec<(InstId, bool)>, depth: usize) {
    if depth > 64 {
        return;
    }
    match f.inst(v) {
        Inst::Load { .. } | Inst::Havoc { .. } => out.push((v, via_gep)),
        Inst::Gep { base, index, .. } => {
            collect(f, *base, via_gep, out, depth + 1);
            collect(f, *index, true, out, depth + 1);
        }
        Inst::Bin { lhs, rhs, .. } => {
            collect(f, *lhs, via_gep, out, depth + 1);
            collect(f, *rhs, via_gep, out, depth + 1);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::{Function, Global, Inst, Module, Ty};

    fn setup() -> (Module, Function) {
        let mut m = Module::new();
        m.add_global(Global::array("A", 16));
        m.add_global(Global::array("B", 16));
        let f = Function::new("f", &[("y", Ty::Int), ("p", Ty::Ptr)]);
        (m, f)
    }

    #[test]
    fn distinct_globals_no_alias() {
        let (_, mut f) = setup();
        let a = f.global_addr(lcm_ir::GlobalId(0));
        let b = f.global_addr(lcm_ir::GlobalId(1));
        assert_eq!(
            alias(symbolic_addr(&f, a), symbolic_addr(&f, b)),
            AliasResult::No
        );
    }

    #[test]
    fn same_global_const_offsets() {
        let (_, mut f) = setup();
        let base = f.global_addr(lcm_ir::GlobalId(0));
        let c1 = f.iconst(1);
        let c2 = f.iconst(2);
        let a1 = f.gep(base, c1);
        let a2 = f.gep(base, c2);
        let a1b = f.gep(base, c1);
        assert_eq!(
            alias(symbolic_addr(&f, a1), symbolic_addr(&f, a2)),
            AliasResult::No
        );
        assert_eq!(
            alias(symbolic_addr(&f, a1), symbolic_addr(&f, a1b)),
            AliasResult::Must
        );
    }

    #[test]
    fn same_symbolic_index_must_alias() {
        let (_, mut f) = setup();
        let base = f.global_addr(lcm_ir::GlobalId(0));
        let y = f.param(0);
        let a1 = f.gep(base, y);
        let a2 = f.gep(base, y);
        assert_eq!(
            alias(symbolic_addr(&f, a1), symbolic_addr(&f, a2)),
            AliasResult::Must
        );
    }

    #[test]
    fn different_symbolic_indices_may_alias() {
        let (_, mut f) = setup();
        let base = f.global_addr(lcm_ir::GlobalId(0));
        let y = f.param(0);
        let one = f.iconst(1);
        let y1 = f.bin(lcm_ir::BinOp::Add, y, one);
        let a1 = f.gep(base, y);
        let a2 = f.gep(base, y1);
        assert_eq!(
            alias(symbolic_addr(&f, a1), symbolic_addr(&f, a2)),
            AliasResult::May
        );
    }

    #[test]
    fn loaded_pointer_is_unknown() {
        let (_, mut f) = setup();
        let p = f.param(1);
        let e = f.entry();
        let loaded = f.push(
            e,
            Inst::Load {
                addr: p,
                ty: Ty::Ptr,
            },
        );
        let sa = symbolic_addr(&f, loaded);
        assert_eq!(sa.region, Region::Unknown);
        let base = f.global_addr(lcm_ir::GlobalId(0));
        assert_eq!(alias(sa, symbolic_addr(&f, base)), AliasResult::May);
    }

    #[test]
    fn allocas_are_distinct() {
        let (_, mut f) = setup();
        let e = f.entry();
        let a = f.push(
            e,
            Inst::Alloca {
                name: "a".into(),
                size: 1,
            },
        );
        let b = f.push(
            e,
            Inst::Alloca {
                name: "b".into(),
                size: 1,
            },
        );
        assert_eq!(
            alias(symbolic_addr(&f, a), symbolic_addr(&f, b)),
            AliasResult::No
        );
        assert_eq!(
            alias(symbolic_addr(&f, a), symbolic_addr(&f, a)),
            AliasResult::Must
        );
    }

    #[test]
    fn feeding_loads_tags_gep_indices() {
        // addr = gep(gep(A, load1), +) vs base via load2:
        //   t_addr = gep(load_ptr_base, load_idx)
        let (_, mut f) = setup();
        let e = f.entry();
        let p = f.param(1);
        let base_ld = f.push(
            e,
            Inst::Load {
                addr: p,
                ty: Ty::Ptr,
            },
        );
        let ga = f.global_addr(lcm_ir::GlobalId(0));
        let idx_ld = f.push(
            e,
            Inst::Load {
                addr: ga,
                ty: Ty::Int,
            },
        );
        let addr = f.gep(base_ld, idx_ld);
        let loads = feeding_loads(&f, addr);
        assert_eq!(loads.len(), 2);
        let base_entry = loads.iter().find(|(id, _)| *id == base_ld).unwrap();
        let idx_entry = loads.iter().find(|(id, _)| *id == idx_ld).unwrap();
        assert!(!base_entry.1, "base pointer load is not gep-index");
        assert!(idx_entry.1, "index load is gep-index");
    }

    #[test]
    fn oracle_agrees_with_uncached_walk() {
        let (_, mut f) = setup();
        let e = f.entry();
        let base = f.global_addr(lcm_ir::GlobalId(0));
        let y = f.param(0);
        let c1 = f.iconst(1);
        let g1 = f.gep(base, y);
        let g2 = f.gep(base, c1);
        let g3 = f.gep(g2, c1);
        let p = f.param(1);
        let ld = f.push(
            e,
            Inst::Load {
                addr: p,
                ty: Ty::Ptr,
            },
        );
        let mut oracle = AddrOracle::new(&f);
        for v in [base, g1, g2, g3, ld, p] {
            assert_eq!(oracle.addr(v), symbolic_addr(&f, v), "value {v:?}");
            // Second ask hits the memo and must agree too.
            assert_eq!(oracle.addr(v), symbolic_addr(&f, v), "value {v:?} (cached)");
        }
        let (queries, hits) = oracle.stats();
        assert!(queries >= 12);
        assert!(hits >= 6, "repeat queries must hit the memo, got {hits}");
        assert_eq!(
            oracle.alias_values(g1, g1),
            alias(symbolic_addr(&f, g1), symbolic_addr(&f, g1))
        );
    }

    #[test]
    fn feeding_loads_through_arithmetic() {
        let (_, mut f) = setup();
        let e = f.entry();
        let ga = f.global_addr(lcm_ir::GlobalId(0));
        let ld = f.push(
            e,
            Inst::Load {
                addr: ga,
                ty: Ty::Int,
            },
        );
        let c = f.iconst(512);
        let scaled = f.bin(lcm_ir::BinOp::Mul, ld, c);
        let addr = f.gep(ga, scaled);
        let loads = feeding_loads(&f, addr);
        assert_eq!(loads, vec![(ld, true)]);
    }
}
