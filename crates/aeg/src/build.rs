//! S-AEG construction from an A-CFG.

use std::collections::HashMap;

use lcm_core::speculation::SpeculationConfig;
use lcm_ir::acfg::{build_acfg, AcfgError};
use lcm_ir::cfg::{reverse_postorder, successors};
use lcm_ir::{BlockId, Function, Inst, InstId, Module, Terminator, Ty};

use crate::addr::{feeding_loads, symbolic_addr, SymAddr};

/// Index of a memory event within one [`Saeg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

/// Kind of a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An architectural load.
    Load,
    /// An architectural store.
    Store,
    /// An undefined external call: may act as a load *or* store to any of
    /// its pointer operands (the solver considers both, §5.1).
    Havoc,
    /// A speculation barrier.
    Fence,
}

/// One node of the S-AEG.
#[derive(Debug, Clone)]
pub struct MemEvent {
    /// Event id (index into [`Saeg::events`]).
    pub id: EventId,
    /// Backing IR instruction.
    pub inst: InstId,
    /// Kind.
    pub kind: EventKind,
    /// Containing block.
    pub block: BlockId,
    /// Topological program position (Fig. 8's node-count axis counts
    /// these).
    pub pos: usize,
    /// Symbolic address (`None` for fences).
    pub addr: Option<SymAddr>,
    /// Events (loads/havocs) feeding the address operand, tagged with
    /// `via_gep_index` (the `addr` vs `addr_gep` discriminator, §5.2).
    pub addr_deps: Vec<(EventId, bool)>,
    /// Events feeding a store's data operand (`data` dependencies).
    pub value_deps: Vec<EventId>,
    /// `true` when the accessed slot is pointer-typed.
    pub ty_ptr: bool,
}

/// A conditional branch of the A-CFG (a PHT speculation primitive).
#[derive(Debug, Clone)]
pub struct BranchInfo {
    /// Block whose terminator is the branch.
    pub block: BlockId,
    /// Taken target.
    pub then_bb: BlockId,
    /// Not-taken target.
    pub else_bb: BlockId,
    /// Events feeding the branch condition (`ctrl` dependency sources).
    pub cond_deps: Vec<EventId>,
    /// Position of the branch (after the last event of its block).
    pub pos: usize,
}

/// The symbolic abstract event graph of one function.
#[derive(Debug, Clone)]
pub struct Saeg {
    /// Analyzed function name.
    pub fname: String,
    /// The loop- and call-free A-CFG the graph was built from.
    pub acfg: Function,
    /// Memory events in topological program order.
    pub events: Vec<MemEvent>,
    /// Conditional branches.
    pub branches: Vec<BranchInfo>,
    /// Analysis capacities (ROB/LSQ/speculation depth).
    pub config: SpeculationConfig,
    inst_to_event: HashMap<u32, usize>,
    /// Blocks in topological order.
    topo: Vec<BlockId>,
    /// `block_reach[a]` contains `b` iff `b` is reachable from `a`
    /// (reflexive).
    block_reach: Vec<Vec<bool>>,
}

impl Saeg {
    /// Builds the S-AEG for `fname`: constructs the A-CFG (§5.1) and
    /// extracts events, dependencies, and branches.
    ///
    /// # Errors
    ///
    /// Propagates [`AcfgError`] from A-CFG construction.
    pub fn build(
        module: &Module,
        fname: &str,
        config: SpeculationConfig,
    ) -> Result<Saeg, AcfgError> {
        let acfg = build_acfg(module, fname)?;
        Ok(Self::from_acfg(fname, acfg, config))
    }

    /// Total dependency-edge count (address, value, and branch-condition
    /// dependencies) — the edge measure the resource governor's S-AEG
    /// budget is checked against.
    pub fn edge_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.addr_deps.len() + e.value_deps.len())
            .sum::<usize>()
            + self
                .branches
                .iter()
                .map(|b| b.cond_deps.len())
                .sum::<usize>()
    }

    /// Builds the S-AEG from an already-constructed (acyclic) A-CFG.
    pub fn from_acfg(fname: &str, acfg: Function, config: SpeculationConfig) -> Saeg {
        let topo = reverse_postorder(&acfg);
        let nblocks = acfg.blocks.len();
        // Static block reachability (reflexive).
        let succ = successors(&acfg);
        let mut block_reach = vec![vec![false; nblocks]; nblocks];
        for &b in topo.iter().rev() {
            let bi = b.0 as usize;
            block_reach[bi][bi] = true;
            let row: Vec<usize> = succ[bi].iter().map(|s| s.0 as usize).collect();
            for s in row {
                let (head, tail) = if bi < s {
                    let (a, c) = block_reach.split_at_mut(s);
                    (&mut a[bi], &c[0])
                } else {
                    let (a, c) = block_reach.split_at_mut(bi);
                    (&mut c[0], &a[s])
                };
                for (h, t) in head.iter_mut().zip(tail.iter()) {
                    *h |= *t;
                }
            }
        }

        // Events in topological order.
        let mut events: Vec<MemEvent> = Vec::new();
        let mut inst_to_event: HashMap<u32, usize> = HashMap::new();
        for &b in &topo {
            for &iid in &acfg.blocks[b.0 as usize].insts {
                let (kind, addr_v, value_v, ty_ptr) = match acfg.inst(iid) {
                    Inst::Load { addr, ty } => (EventKind::Load, Some(*addr), None, *ty == Ty::Ptr),
                    Inst::Store { addr, value } => {
                        let ptr = acfg.inst(*value).result_ty() == Some(Ty::Ptr);
                        (EventKind::Store, Some(*addr), Some(*value), ptr)
                    }
                    Inst::Havoc { .. } => (EventKind::Havoc, None, None, false),
                    Inst::Fence => (EventKind::Fence, None, None, false),
                    Inst::Alloca { .. } => continue,
                    other => {
                        debug_assert!(!other.is_scheduled());
                        continue;
                    }
                };
                let id = EventId(events.len());
                inst_to_event.insert(iid.0, events.len());
                events.push(MemEvent {
                    id,
                    inst: iid,
                    kind,
                    block: b,
                    pos: events.len(),
                    addr: addr_v.map(|a| symbolic_addr(&acfg, a)),
                    addr_deps: Vec::new(),
                    value_deps: Vec::new(),
                    ty_ptr,
                });
                // Havoc's "address" stays None: it may touch any of its
                // pointer args (Unknown region is implied).
                let _ = value_v;
            }
        }

        // Dependencies (need inst_to_event complete).
        let mut addr_deps_all: Vec<Vec<(EventId, bool)>> = vec![Vec::new(); events.len()];
        let mut value_deps_all: Vec<Vec<EventId>> = vec![Vec::new(); events.len()];
        for ev in &events {
            match acfg.inst(ev.inst) {
                Inst::Load { addr, .. } => {
                    addr_deps_all[ev.id.0] = map_loads(&acfg, *addr, &inst_to_event);
                }
                Inst::Store { addr, value } => {
                    addr_deps_all[ev.id.0] = map_loads(&acfg, *addr, &inst_to_event);
                    value_deps_all[ev.id.0] = map_loads(&acfg, *value, &inst_to_event)
                        .into_iter()
                        .map(|(e, _)| e)
                        .collect();
                }
                Inst::Havoc { ptr_args, .. } => {
                    let mut deps = Vec::new();
                    for &a in ptr_args {
                        deps.extend(map_loads(&acfg, a, &inst_to_event));
                    }
                    addr_deps_all[ev.id.0] = deps;
                }
                _ => {}
            }
        }
        for (i, ev) in events.iter_mut().enumerate() {
            ev.addr_deps = std::mem::take(&mut addr_deps_all[i]);
            ev.value_deps = std::mem::take(&mut value_deps_all[i]);
        }

        // Branches.
        let mut branches = Vec::new();
        for &b in &topo {
            if let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = &acfg.blocks[b.0 as usize].term
            {
                let cond_deps = map_loads(&acfg, *cond, &inst_to_event)
                    .into_iter()
                    .map(|(e, _)| e)
                    .collect();
                let pos = acfg.blocks[b.0 as usize]
                    .insts
                    .iter()
                    .rev()
                    .find_map(|i| inst_to_event.get(&i.0))
                    .map_or_else(
                        || {
                            // No events in this block: position of the first
                            // event of any successor, approximated by scanning.
                            events
                                .iter()
                                .find(|e| e.block == *then_bb || e.block == *else_bb)
                                .map_or(events.len(), |e| e.pos)
                        },
                        |&i| events[i].pos + 1,
                    );
                branches.push(BranchInfo {
                    block: b,
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                    cond_deps,
                    pos,
                });
            }
        }

        Saeg {
            fname: fname.to_string(),
            acfg,
            events,
            branches,
            config,
            inst_to_event,
            topo,
            block_reach,
        }
    }

    /// The event backing an IR instruction, if it is a memory event.
    pub fn event_of_inst(&self, inst: InstId) -> Option<&MemEvent> {
        self.inst_to_event.get(&inst.0).map(|&i| &self.events[i])
    }

    /// Blocks in topological order.
    pub fn topo_blocks(&self) -> &[BlockId] {
        &self.topo
    }

    /// `true` iff `b` is reachable from `a` (reflexive).
    pub fn block_reaches(&self, a: BlockId, b: BlockId) -> bool {
        self.block_reach[a.0 as usize][b.0 as usize]
    }

    /// Deterministically expands a witness seed — blocks that must
    /// execute, plus the constrained branch's direction — into a concrete
    /// architectural path (executed blocks, in control-flow order from
    /// the entry to a return). Findings store only the compact seed; the
    /// path is built here on demand when a witness is rendered.
    ///
    /// Returns an empty path when no such path exists (a seed taken from
    /// a verified-feasible assumption stack always expands).
    pub fn arch_witness_path(
        &self,
        required: &[BlockId],
        branch_dir: Option<(BlockId, bool)>,
    ) -> Vec<BlockId> {
        let nb = self.acfg.blocks.len();
        // Successors, honoring the constrained branch's direction.
        let succs = |b: BlockId| -> Vec<BlockId> {
            if let Some((c, then)) = branch_dir {
                if b == c {
                    if let Terminator::CondBr {
                        then_bb, else_bb, ..
                    } = &self.acfg.blocks[b.0 as usize].term
                    {
                        return vec![if then { *then_bb } else { *else_bb }];
                    }
                }
            }
            self.acfg.blocks[b.0 as usize].term.successors()
        };
        // Visit required blocks in topological order: in an acyclic CFG
        // any joint path must pass them in that order.
        let mut tpos = vec![usize::MAX; nb];
        for (i, &b) in self.topo.iter().enumerate() {
            tpos[b.0 as usize] = i;
        }
        let mut targets: Vec<BlockId> = required.to_vec();
        targets.sort_by_key(|b| tpos[b.0 as usize]);
        targets.dedup();
        // Shortest `from → goal` block segment (excluding `from`),
        // breadth-first so the expansion is deterministic.
        let bfs = |from: BlockId, goal: &dyn Fn(BlockId) -> bool| -> Option<Vec<BlockId>> {
            if goal(from) {
                return Some(Vec::new());
            }
            let mut parent = vec![u32::MAX; nb];
            let mut seen = vec![false; nb];
            seen[from.0 as usize] = true;
            let mut queue = std::collections::VecDeque::from([from]);
            while let Some(b) = queue.pop_front() {
                for s in succs(b) {
                    if seen[s.0 as usize] {
                        continue;
                    }
                    seen[s.0 as usize] = true;
                    parent[s.0 as usize] = b.0;
                    if goal(s) {
                        let mut seg = vec![s];
                        let mut x = b;
                        while x != from {
                            seg.push(x);
                            x = BlockId(parent[x.0 as usize]);
                        }
                        seg.reverse();
                        return Some(seg);
                    }
                    queue.push_back(s);
                }
            }
            None
        };
        let entry = BlockId(0);
        let mut path = vec![entry];
        let mut cur = entry;
        for &t in &targets {
            if t == cur {
                continue;
            }
            match bfs(cur, &|b| b == t) {
                Some(seg) => {
                    path.extend(seg);
                    cur = t;
                }
                None => return Vec::new(),
            }
        }
        let is_ret = |b: BlockId| matches!(self.acfg.blocks[b.0 as usize].term, Terminator::Ret(_));
        if !is_ret(cur) {
            match bfs(cur, &is_ret) {
                Some(seg) => path.extend(seg),
                None => return Vec::new(),
            }
        }
        path
    }

    /// `true` iff event `a` can precede event `b` on some path.
    pub fn precedes(&self, a: EventId, b: EventId) -> bool {
        let (ea, eb) = (&self.events[a.0], &self.events[b.0]);
        if ea.block == eb.block {
            ea.pos < eb.pos
        } else {
            self.block_reaches(ea.block, eb.block)
        }
    }

    /// The events transiently fetchable in the speculative window opened
    /// when the branch of `br` *mispredicts toward* `target_then`
    /// (§3.3): up to `speculation_depth` instructions along paths from
    /// that successor, never crossing a fence.
    pub fn spec_window(&self, br: &BranchInfo, target_then: bool) -> Vec<EventId> {
        let start = if target_then { br.then_bb } else { br.else_bb };
        let mut out = Vec::new();
        // BFS over blocks in topo order; count events; fence stops the
        // window within its path.
        let mut frontier: Vec<BlockId> = vec![start];
        let mut visited = vec![false; self.acfg.blocks.len()];
        let mut budget = self.config.speculation_depth;
        while let Some(b) = frontier.pop() {
            if visited[b.0 as usize] || budget == 0 {
                continue;
            }
            visited[b.0 as usize] = true;
            let mut fenced = false;
            for &iid in &self.acfg.blocks[b.0 as usize].insts {
                if budget == 0 {
                    break;
                }
                if let Some(&ei) = self.inst_to_event.get(&iid.0) {
                    if self.events[ei].kind == EventKind::Fence {
                        fenced = true;
                        break;
                    }
                    out.push(EventId(ei));
                    budget -= 1;
                }
            }
            if !fenced && budget > 0 {
                frontier.extend(self.acfg.blocks[b.0 as usize].term.successors());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` if every path from event `a` to event `b` crosses a fence —
    /// i.e. speculation started before `a` cannot reach `b`, and loads at
    /// `b` cannot bypass stores at `a`.
    pub fn always_fenced_between(&self, a: EventId, b: EventId) -> bool {
        let (ea, eb) = (&self.events[a.0], &self.events[b.0]);
        if !self.precedes(a, b) {
            return false;
        }
        // DFS over (block, entry-offset) avoiding fences; if we can reach b
        // without crossing one, the pair is not fenced.
        // Within ea's own block: scan events after a up to block end.
        let fence_in_range = |block: BlockId, from_pos: Option<usize>, to_pos: Option<usize>| {
            self.events.iter().any(|e| {
                e.block == block
                    && e.kind == EventKind::Fence
                    && from_pos.is_none_or(|p| e.pos > p)
                    && to_pos.is_none_or(|p| e.pos < p)
            })
        };
        if ea.block == eb.block {
            return fence_in_range(ea.block, Some(ea.pos), Some(eb.pos));
        }
        if fence_in_range(ea.block, Some(ea.pos), None) {
            return true; // tail of a's block is fenced on the only way out
        }
        // Explore fence-free paths from a's successors to b's block.
        let mut stack: Vec<BlockId> = self.acfg.blocks[ea.block.0 as usize].term.successors();
        let mut seen = vec![false; self.acfg.blocks.len()];
        while let Some(blk) = stack.pop() {
            if seen[blk.0 as usize] {
                continue;
            }
            seen[blk.0 as usize] = true;
            if blk == eb.block {
                // Reached b's block; fence before b within the block?
                if !fence_in_range(blk, None, Some(eb.pos)) {
                    return false; // fence-free path exists
                }
                continue;
            }
            if fence_in_range(blk, None, None) {
                continue; // this block is fenced; do not pass
            }
            if self.block_reaches(blk, eb.block) {
                stack.extend(self.acfg.blocks[blk.0 as usize].term.successors());
            }
        }
        true
    }

    /// Load events (including havocs, which may act as loads).
    pub fn loads(&self) -> impl Iterator<Item = &MemEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Load | EventKind::Havoc))
    }

    /// Store events (including havocs, which may act as stores).
    pub fn stores(&self) -> impl Iterator<Item = &MemEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Store | EventKind::Havoc))
    }

    /// Renders the S-AEG in DOT form (the Fig. 7 artifact): events as
    /// nodes, `addr`/`addr_gep`/`data` dependency edges labelled, branches
    /// as diamonds.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.fname);
        let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
        for e in &self.events {
            let label = format!("{}: {:?} {:?}", e.pos, e.kind, self.acfg.inst(e.inst));
            let _ = writeln!(s, "  e{} [label=\"{}\"];", e.id.0, label.replace('"', "'"));
        }
        for e in &self.events {
            for &(d, gep) in &e.addr_deps {
                let lbl = if gep { "addr_gep" } else { "addr" };
                let _ = writeln!(
                    s,
                    "  e{} -> e{} [label=\"{lbl}\", color=gray40];",
                    d.0, e.id.0
                );
            }
            for &d in &e.value_deps {
                let _ = writeln!(
                    s,
                    "  e{} -> e{} [label=\"data\", color=gray55];",
                    d.0, e.id.0
                );
            }
        }
        for (i, br) in self.branches.iter().enumerate() {
            let _ = writeln!(s, "  br{i} [shape=diamond, label=\"br@bb{}\"];", br.block.0);
            for &d in &br.cond_deps {
                let _ = writeln!(s, "  e{} -> br{i} [label=\"ctrl\", color=gray70];", d.0);
            }
        }
        s.push_str("}\n");
        s
    }
}

fn map_loads(
    f: &Function,
    v: lcm_ir::Value,
    inst_to_event: &HashMap<u32, usize>,
) -> Vec<(EventId, bool)> {
    feeding_loads(f, v)
        .into_iter()
        .filter_map(|(iid, gep)| inst_to_event.get(&iid.0).map(|&e| (EventId(e), gep)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saeg_of(src: &str, f: &str) -> Saeg {
        let m = lcm_minic::compile(src).unwrap();
        Saeg::build(&m, f, SpeculationConfig::default()).unwrap()
    }

    const SPECTRE_V1: &str = "int A[16]; int B[256]; int size_A; int tmp;\n         void victim(int y) { if (y < size_A) { tmp &= B[A[y]]; } }";

    #[test]
    fn spectre_v1_event_structure() {
        let s = saeg_of(SPECTRE_V1, "victim");
        assert!(!s.events.is_empty());
        assert_eq!(s.branches.len(), 1, "one speculation primitive");
        // The B-load's address depends on the A-load via a gep index.
        let b_load = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Load)
            .find(|e| {
                e.addr_deps.iter().any(|&(d, gep)| {
                    gep && s.events[d.0].kind == EventKind::Load
                        && !s.events[d.0].addr_deps.is_empty()
                })
            });
        assert!(b_load.is_some(), "B[A[y]] chain present");
    }

    #[test]
    fn positions_follow_topological_order() {
        let s = saeg_of(SPECTRE_V1, "victim");
        for (i, e) in s.events.iter().enumerate() {
            assert_eq!(e.pos, i);
            assert_eq!(e.id.0, i);
        }
    }

    #[test]
    fn precedes_within_and_across_blocks() {
        let s = saeg_of(
            "int G; int f(int x) { int a = x; if (x) { G = a; } return G; }",
            "f",
        );
        let loads: Vec<EventId> = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Load)
            .map(|e| e.id)
            .collect();
        let stores: Vec<EventId> = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Store)
            .map(|e| e.id)
            .collect();
        // Parameter spill precedes everything after it.
        assert!(s.precedes(stores[0], *loads.last().unwrap()));
        assert!(!s.precedes(*loads.last().unwrap(), stores[0]));
    }

    #[test]
    fn spec_window_contains_wrong_path_events() {
        let s = saeg_of(SPECTRE_V1, "victim");
        let br = &s.branches[0];
        // Window toward the if-body contains the A/B loads.
        let w_then = s.spec_window(br, true);
        let w_else = s.spec_window(br, false);
        let body_loads = s
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Load && !e.addr_deps.is_empty())
            .count();
        assert!(body_loads >= 2);
        assert!(
            w_then.len() + w_else.len() >= body_loads,
            "some window covers the body"
        );
    }

    #[test]
    fn spec_window_respects_depth() {
        let src = "int A[64]; int t; void f(int c) { if (c) { t = A[0] + A[1] + A[2] + A[3] + A[4] + A[5]; } }";
        let m = lcm_minic::compile(src).unwrap();
        let full = Saeg::build(&m, "f", SpeculationConfig::default()).unwrap();
        let shallow = Saeg::build(&m, "f", SpeculationConfig::default().with_depth(2)).unwrap();
        let br_f = &full.branches[0];
        let br_s = &shallow.branches[0];
        let (wf, ws) = (
            full.spec_window(br_f, true),
            shallow.spec_window(br_s, true),
        );
        assert!(ws.len() <= 2);
        assert!(wf.len() > ws.len());
    }

    #[test]
    fn spec_window_stops_at_fence() {
        let src = "int A[8]; int t; void f(int c) { if (c) { lfence(); t = A[0]; } }";
        let s = saeg_of(src, "f");
        let br = &s.branches[0];
        let w = s.spec_window(br, true);
        // The A[0] load is behind the fence: not speculatively fetchable.
        let a_load_in_window = w.iter().any(|&e| {
            s.events[e.0].kind == EventKind::Load
                && matches!(
                    s.events[e.0].addr,
                    Some(crate::addr::SymAddr {
                        region: crate::addr::Region::Global(_),
                        ..
                    })
                )
        });
        assert!(!a_load_in_window);
    }

    #[test]
    fn always_fenced_between_detects_barriers() {
        let src = "int G; int H; void f() { G = 1; lfence(); H = G; }";
        let s = saeg_of(src, "f");
        let store_g = s
            .events
            .iter()
            .find(|e| e.kind == EventKind::Store)
            .unwrap()
            .id;
        let load_g = s
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load)
            .unwrap()
            .id;
        assert!(s.always_fenced_between(store_g, load_g));

        let src2 = "int G; int H; void f() { G = 1; H = G; }";
        let s2 = saeg_of(src2, "f");
        let store_g = s2
            .events
            .iter()
            .find(|e| e.kind == EventKind::Store)
            .unwrap()
            .id;
        let load_g = s2
            .events
            .iter()
            .rfind(|e| e.kind == EventKind::Load)
            .unwrap()
            .id;
        assert!(!s2.always_fenced_between(store_g, load_g));
    }

    #[test]
    fn havoc_events_extracted_with_deps() {
        let src = "int buf[8]; void f(int i) { memcpy(buf, i); }";
        let s = saeg_of(src, "f");
        let h = s.events.iter().find(|e| e.kind == EventKind::Havoc);
        assert!(h.is_some(), "undefined call becomes a havoc event");
    }

    #[test]
    fn to_dot_mentions_addr_gep() {
        let s = saeg_of(SPECTRE_V1, "victim");
        let dot = s.to_dot();
        assert!(dot.contains("addr_gep"));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("diamond"));
    }
}
