//! Symbolic Abstract Event Graph (S-AEG) construction — §5.2 of the paper.
//!
//! An S-AEG over-approximates all candidate executions of one function's
//! A-CFG. Nodes are the function's memory events; the symbolic part —
//! which-path, which-speculation, which-aliasing — is encoded as
//! constraints over boolean variables discharged by [`lcm_sat`] (the Z3
//! substitute; see DESIGN.md).
//!
//! This crate computes everything the leakage detection engines (crate
//! `lcm-detect`) consume:
//!
//! * the event list with program positions ([`MemEvent`]),
//! * symbolic addresses with a may/must/no-alias oracle ([`addr`]),
//! * `addr` / `addr_gep` / `data` dependencies and their
//!   `(data.rf)*.addr` generalization ([`deps`]),
//! * attacker-control taint (§5.3) ([`taint`]),
//! * speculative windows per branch, fence-aware ([`Saeg::spec_window`]),
//! * a SAT encoding of architectural path feasibility
//!   ([`Feasibility`]).
//!
//! # Examples
//!
//! ```
//! use lcm_aeg::Saeg;
//! use lcm_core::speculation::SpeculationConfig;
//!
//! let module = lcm_minic::compile(
//!     "int A[8]; int t; void f(int i) { if (i < 8) { t = A[i]; } }",
//! ).unwrap();
//! let saeg = Saeg::build(&module, "f", SpeculationConfig::default()).unwrap();
//! assert_eq!(saeg.branches.len(), 1);
//! // The if-body load is transiently fetchable when the bounds check
//! // mispredicts toward the body.
//! let window = saeg.spec_window(&saeg.branches[0], true);
//! assert!(!window.is_empty());
//! ```

pub mod addr;
pub mod deps;
pub mod taint;
pub mod trace;

mod build;
mod reach;

pub use build::{BranchInfo, EventId, EventKind, MemEvent, Saeg};
pub use reach::{
    incremental_disabled_by_env, prefilter_disabled_by_env, FeasStats, Feasibility, WitnessSeed,
};
