//! SAT encoding of architectural path feasibility (§5.2).
//!
//! Mirrors Fig. 7's edge formulas: each block gets an architectural-
//! execution literal `A[b]`; each conditional branch a decision literal;
//! `A[b] ⇔ ⋁ (A[p] ∧ edge taken)`. A leakage query asserts that its
//! required events are all architecturally (or, for the mispredicting
//! branch, transiently) executed and asks the solver for a consistent
//! branch-decision assignment.
//!
//! Engines drive queries through an **assumption stack** ([`Feasibility::push`],
//! [`Feasibility::mark`], [`Feasibility::truncate`]) instead of cloning a
//! base request per candidate, so the hot loops allocate nothing per
//! query.
//!
//! Two layers answer queries before the solver does:
//!
//! 1. A **block-reachability pre-screen** ([`BlockScreen`]): since the
//!    A-CFG is acyclic and every satisfying model of the path formula is
//!    exactly one root-to-return path (entry is asserted, and the in-edge
//!    equivalences force the executed set to follow branch decisions),
//!    a stack of positive `A[b]` literals plus at most one decision
//!    literal can be decided *exactly* from the reflexive-transitive
//!    reachability relation — no solver, no memo, O(k²) bit probes.
//!    Stacks outside that fragment (negated arch literals, several
//!    decision literals, literals from gate encodings) fall through.
//! 2. A **stack-structured trie memo**: queries that reach the memo walk
//!    a trie keyed by the literal sequence itself (deduplicated on the
//!    walk), so a hit costs a pointer chase with no allocation and no
//!    sort, unlike the previous sorted-`Vec<Lit>` hash key.
//!
//! Counters for both layers are tracked in [`FeasStats`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lcm_core::fault::site;
use lcm_core::govern::{AnalysisError, BudgetKind, ResourceGovernor};
use lcm_ir::{BlockId, Terminator};
use lcm_relalg::Relation;
use lcm_sat::cnf::Cnf;
use lcm_sat::{AbortReason, Lit, SolveLimits, SolveResult};

use crate::build::Saeg;

/// Environment variable that force-disables the reachability pre-screen
/// (every query goes through the memo + solver). Used by the
/// differential test suite; any value other than `0` disables.
pub const DISABLE_PREFILTER_ENV: &str = "LCM_DISABLE_PREFILTER";

/// `true` when [`DISABLE_PREFILTER_ENV`] is set in the environment.
pub fn prefilter_disabled_by_env() -> bool {
    std::env::var_os(DISABLE_PREFILTER_ENV).is_some_and(|v| v != "0")
}

/// Environment variable that force-disables persistent incremental
/// solving: every solver-bound query runs on a fresh clone of the
/// pristine encoded instance instead of the long-lived solver, so no
/// learnt clause survives across queries. This is the oracle half of
/// the incremental-SAT differential tests; any value other than `0`
/// disables.
pub const DISABLE_INCREMENTAL_ENV: &str = "LCM_DISABLE_INCREMENTAL";

/// `true` when [`DISABLE_INCREMENTAL_ENV`] is set in the environment.
pub fn incremental_disabled_by_env() -> bool {
    std::env::var_os(DISABLE_INCREMENTAL_ENV).is_some_and(|v| v != "0")
}

/// Query counters and phase timings for one [`Feasibility`] instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeasStats {
    /// Feasibility questions that reached the memo/solver layer
    /// (including memo hits).
    pub queries: u64,
    /// Questions answered from the memo without touching the solver.
    pub memo_hits: u64,
    /// Questions answered by the block-reachability pre-screen without
    /// reaching the memo or the solver.
    pub queries_avoided: u64,
    /// Engine-level candidate checks skipped entirely because a hoisted
    /// pre-screen (window bitsets, duplicate-block fast paths) proved the
    /// stack unchanged or the answer forced.
    pub prefilter_hits: u64,
    /// Time spent building the CNF encoding and the reachability matrix.
    pub encode: Duration,
    /// Time spent inside the SAT solver.
    pub solve: Duration,
    /// Solver calls answered by a solver that had already served an
    /// earlier call on this instance — the persistent-incremental reuse
    /// count. Always 0 in fresh-per-query oracle mode.
    pub solver_reuses: u64,
    /// Learnt clauses newly retained in the persistent solver's database
    /// across calls (clauses learned and kept for future queries).
    pub clauses_retained: u64,
}

fn solve_latency() -> &'static lcm_obs::metrics::Histogram {
    static H: std::sync::OnceLock<lcm_obs::metrics::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| {
        lcm_obs::metrics::global().histogram(
            lcm_obs::metrics::names::SOLVE_LATENCY,
            "Wall-clock latency of SAT solver calls (screened and memoized queries never reach here)",
            lcm_obs::metrics::latency_buckets(),
        )
    })
}

/// The architectural skeleton of a witness, recoverable from an
/// assumption stack without solving: the blocks required to execute and
/// the direction of the constrained branch, if any.
///
/// [`Saeg::arch_witness_path`] expands a seed into a concrete
/// root-to-return block path on demand, so findings can stay compact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessSeed {
    /// Blocks asserted architecturally executed, in push order.
    pub blocks: Vec<BlockId>,
    /// Constrained branch block and its direction (`true` = then-target).
    pub branch_dir: Option<(BlockId, bool)>,
}

/// What a solver variable means, for pre-screening and seed recovery.
#[derive(Debug, Clone, Copy)]
enum LitKind {
    /// `A[b]`: block `b` executes architecturally.
    Arch(u32),
    /// Decision literal of the conditional branch terminating `b`.
    Decision(u32),
}

/// One-shot reachability data consulted before the solver.
#[derive(Debug, Clone)]
struct BlockScreen {
    /// Reflexive-transitive reachability over A-CFG blocks.
    reach: Relation,
    /// `(then, else)` targets per conditional-branch block.
    targets: HashMap<u32, (u32, u32)>,
}

/// A trie node keyed by assumption literals; the memo for one
/// [`Feasibility`] instance. Children are unsorted — stacks are short
/// and push order is deterministic, so a linear probe wins over sorting.
#[derive(Debug, Default, Clone)]
struct MemoNode {
    children: Vec<(Lit, u32)>,
    /// Memoized `check_stack` answer.
    result: Option<bool>,
    /// Memoized `witness_path_stack` answer.
    path: Option<Option<Vec<BlockId>>>,
}

#[derive(Debug, Clone)]
struct Memo {
    nodes: Vec<MemoNode>,
}

impl Memo {
    fn new() -> Memo {
        Memo {
            nodes: vec![MemoNode::default()],
        }
    }

    /// Walks (creating nodes as needed) to the node for `stack`'s literal
    /// sequence, skipping literals already seen earlier in the stack so
    /// `[l, l]` and `[l]` share a node. Allocation-free when the path
    /// already exists.
    fn locate(&mut self, stack: &[Lit]) -> usize {
        let mut cur = 0usize;
        for (i, &lit) in stack.iter().enumerate() {
            if stack[..i].contains(&lit) {
                continue;
            }
            cur = match self.nodes[cur].children.iter().find(|&&(l, _)| l == lit) {
                Some(&(_, child)) => child as usize,
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(MemoNode::default());
                    self.nodes[cur].children.push((lit, id as u32));
                    id
                }
            };
        }
        cur
    }
}

/// A reusable feasibility checker over one S-AEG.
///
/// Queries are memoized: leakage engines re-ask the same path questions
/// for every chain sharing a speculation site.
///
/// The underlying solver is **persistent and incremental**: one
/// [`Cnf`]-wrapped solver answers every query via assumptions, so learnt
/// clauses accumulate across stacks (bounded by the solver's clause-DB
/// reduction policy). `Clone` clones the whole checker — encoding, memo,
/// learnt clauses, governor handle — which is how intra-function work
/// splitting gives each worker its own persistent solver without paying
/// the CNF encoding again.
#[derive(Debug, Clone)]
pub struct Feasibility {
    cnf: Cnf,
    arch: Vec<Lit>,
    decision: HashMap<u32, Lit>,
    /// Solver-variable index → meaning, for the pre-screen and seeds.
    lit_kind: HashMap<u32, LitKind>,
    /// Reachability pre-screen; `None` when force-disabled.
    screen: Option<BlockScreen>,
    memo: Memo,
    /// Current assumption set, manipulated via `push`/`mark`/`truncate`.
    stack: Vec<Lit>,
    /// Scratch for the pre-screen's required-block set; reused across
    /// queries so screening allocates nothing.
    blocks_buf: Vec<u32>,
    stats: FeasStats,
    /// Per-function resource governor, when the caller runs governed.
    governor: Option<Arc<ResourceGovernor>>,
    /// Pristine encoded solver, present only in fresh-per-query oracle
    /// mode (see [`Self::set_incremental`]): each solver-bound query
    /// clones it and discards the clone, so nothing persists.
    oracle_base: Option<Box<lcm_sat::Solver>>,
    /// Whether the persistent solver has served a call yet (drives
    /// [`FeasStats::solver_reuses`]).
    solver_used: bool,
}

impl Feasibility {
    /// Builds the path-constraint formula for the S-AEG's A-CFG, with
    /// the reachability pre-screen enabled (unless
    /// [`DISABLE_PREFILTER_ENV`] is set).
    pub fn new(saeg: &Saeg) -> Self {
        Self::with_prefilter(saeg, true)
    }

    /// Like [`Self::new`], but with explicit control over the
    /// reachability pre-screen. With `prefilter == false` every query
    /// goes through the memo and solver — the differential-testing
    /// configuration.
    pub fn with_prefilter(saeg: &Saeg, prefilter: bool) -> Self {
        let t0 = Instant::now();
        let f = &saeg.acfg;
        let mut cnf = Cnf::new();
        let arch: Vec<Lit> = (0..f.blocks.len()).map(|_| cnf.fresh()).collect();
        let mut decision: HashMap<u32, Lit> = HashMap::new();
        for (bi, b) in f.iter_blocks() {
            if matches!(b.term, Terminator::CondBr { .. }) {
                decision.insert(bi.0, cnf.fresh());
            }
        }
        let mut lit_kind: HashMap<u32, LitKind> = HashMap::new();
        for (bi, &l) in arch.iter().enumerate() {
            lit_kind.insert(l.var().0, LitKind::Arch(bi as u32));
        }
        for (&bi, &l) in &decision {
            lit_kind.insert(l.var().0, LitKind::Decision(bi));
        }
        // Entry is executed.
        cnf.assert_lit(arch[0]);
        // In-edge literals per block; CFG edges for the pre-screen.
        let mut in_edges: Vec<Vec<Lit>> = vec![Vec::new(); f.blocks.len()];
        let mut edges = Relation::empty(f.blocks.len());
        let mut targets: HashMap<u32, (u32, u32)> = HashMap::new();
        for (bi, b) in f.iter_blocks() {
            match &b.term {
                Terminator::Br(t) => {
                    in_edges[t.0 as usize].push(arch[bi.0 as usize]);
                    edges.insert(bi.0 as usize, t.0 as usize);
                }
                Terminator::CondBr {
                    then_bb, else_bb, ..
                } => {
                    let d = decision[&bi.0];
                    let taken = cnf.and(arch[bi.0 as usize], d);
                    let not_taken = cnf.and(arch[bi.0 as usize], !d);
                    in_edges[then_bb.0 as usize].push(taken);
                    in_edges[else_bb.0 as usize].push(not_taken);
                    edges.insert(bi.0 as usize, then_bb.0 as usize);
                    edges.insert(bi.0 as usize, else_bb.0 as usize);
                    targets.insert(bi.0, (then_bb.0, else_bb.0));
                }
                Terminator::Ret(_) => {}
            }
        }
        for (bi, block_edges) in in_edges.iter().enumerate() {
            if bi == 0 {
                continue;
            }
            let any = cnf.or_all(block_edges);
            // arch[bi] <-> any
            cnf.assert_implies(arch[bi], any);
            cnf.assert_implies(any, arch[bi]);
        }
        let screen = if prefilter && !prefilter_disabled_by_env() {
            Some(BlockScreen {
                reach: edges.reflexive_transitive_closure(),
                targets,
            })
        } else {
            None
        };
        let stats = FeasStats {
            encode: t0.elapsed(),
            ..FeasStats::default()
        };
        Feasibility {
            cnf,
            arch,
            decision,
            lit_kind,
            screen,
            memo: Memo::new(),
            stack: Vec::new(),
            blocks_buf: Vec::new(),
            stats,
            governor: None,
            oracle_base: None,
            solver_used: false,
        }
    }

    /// Switches between persistent incremental solving (the default) and
    /// a fresh-solver-per-query oracle mode. Turning incrementality
    /// *off* snapshots the current solver as the pristine instance every
    /// later query re-starts from — call it right after construction,
    /// before any query, so the snapshot carries no learnt clauses.
    ///
    /// Findings are identical either way: engines consume only the
    /// sat/unsat verdict (plus the stack-derived witness seed), and
    /// satisfiability under assumptions is a semantic property learnt
    /// clauses cannot change. The mode exists for the differential tests
    /// and for memory-constrained runs.
    pub fn set_incremental(&mut self, on: bool) {
        self.oracle_base = if on {
            None
        } else {
            Some(Box::new(self.cnf.solver_mut().clone()))
        };
    }

    /// Attaches a per-function resource governor: subsequent queries
    /// honour its deadline and conflict budget, and once it trips every
    /// query answers "infeasible" so the engines drain quickly. With no
    /// budgets set and no faults armed the governed instance behaves
    /// identically to an ungoverned one.
    pub fn attach_governor(&mut self, gov: Arc<ResourceGovernor>) {
        self.governor = Some(gov);
    }

    /// Strided governor poll for engine loop heads. Always true when
    /// ungoverned; false once the governor has tripped.
    #[inline]
    pub fn governor_ok(&self) -> bool {
        self.governor.as_ref().is_none_or(|g| g.poll())
    }

    /// Governor gate at query entry: fires the `solver_abort` /
    /// `conflict_budget` fault sites and polls the deadline. Returns
    /// false when the query must not run (the governor has tripped).
    #[inline]
    fn governor_gate(&self) -> bool {
        let Some(g) = &self.governor else { return true };
        if g.fault_fires(site::SOLVER_ABORT) {
            g.trip(AnalysisError::SolverAbort);
            return false;
        }
        if g.fault_fires(site::CONFLICT_BUDGET) {
            g.trip(AnalysisError::BudgetExceeded {
                kind: BudgetKind::SolverConflicts,
            });
            return false;
        }
        g.poll()
    }

    /// One governed solver call over the current stack: applies the
    /// governor's remaining budget as [`SolveLimits`], charges the
    /// conflicts the call spent, and converts an abort into a trip.
    ///
    /// In the default incremental mode the call runs on the persistent
    /// solver, so its learnt clauses carry into the next query; in
    /// oracle mode it runs on a throwaway clone of the pristine
    /// encoding.
    fn solve_stack_governed(&mut self) -> SolveResult {
        let limits = self.governor.as_ref().map(|g| SolveLimits {
            max_conflicts: g.remaining_conflicts(),
            deadline: g.deadline(),
        });
        let mut span = lcm_obs::span("sat_solve", "sat");
        span.arg_u64("assumptions", self.stack.len() as u64);
        let (res, spent) = if let Some(base) = &self.oracle_base {
            let mut fresh = (**base).clone();
            if let Some(l) = limits {
                fresh.set_limits(l);
            }
            let (c0, _, _) = fresh.stats();
            let t0 = Instant::now();
            let res = fresh.solve_with(&self.stack);
            solve_latency().observe(t0.elapsed());
            let (c1, _, _) = fresh.stats();
            (res, c1 - c0)
        } else {
            if let Some(l) = limits {
                self.cnf.solver_mut().set_limits(l);
            }
            if self.solver_used {
                self.stats.solver_reuses += 1;
            }
            self.solver_used = true;
            let retained0 = self.cnf.solver_mut().learnt_stats().retained;
            let (c0, _, _) = self.cnf.solver_mut().stats();
            let t0 = Instant::now();
            let res = self.cnf.solver_mut().solve_with(&self.stack);
            solve_latency().observe(t0.elapsed());
            let (c1, _, _) = self.cnf.solver_mut().stats();
            let retained1 = self.cnf.solver_mut().learnt_stats().retained;
            self.stats.clauses_retained += retained1.saturating_sub(retained0) as u64;
            (res, c1 - c0)
        };
        drop(span);
        if let Some(g) = &self.governor {
            g.charge_conflicts(spent);
            if let SolveResult::Aborted(reason) = &res {
                match reason {
                    AbortReason::Deadline => g.trip_timeout(),
                    AbortReason::Conflicts => g.trip(AnalysisError::BudgetExceeded {
                        kind: BudgetKind::SolverConflicts,
                    }),
                }
            }
        }
        res
    }

    /// The literal asserting block `b` is architecturally executed.
    pub fn arch_lit(&self, b: BlockId) -> Lit {
        self.arch[b.0 as usize]
    }

    /// The branch-decision literal of the conditional branch terminating
    /// `b` (true = then-target taken architecturally), if any.
    pub fn decision_lit(&self, b: BlockId) -> Option<Lit> {
        self.decision.get(&b.0).copied()
    }

    /// Query counters and timings accumulated so far.
    pub fn stats(&self) -> FeasStats {
        self.stats
    }

    /// Records one engine-level check skipped by a hoisted pre-screen.
    pub fn note_prefilter_hit(&mut self) {
        self.stats.prefilter_hits += 1;
    }

    // ----- assumption stack ---------------------------------------------

    /// Pushes an assumption onto the current query's requirement set.
    pub fn push(&mut self, lit: Lit) {
        self.stack.push(lit);
    }

    /// Pushes every literal in `lits`.
    pub fn push_all(&mut self, lits: &[Lit]) {
        self.stack.extend_from_slice(lits);
    }

    /// The current stack depth; pass to [`Self::truncate`] to restore.
    pub fn mark(&self) -> usize {
        self.stack.len()
    }

    /// Pops assumptions back to a depth previously taken with
    /// [`Self::mark`].
    pub fn truncate(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    /// The witness skeleton encoded by the current stack: required
    /// blocks (in push order, deduplicated) and the constrained branch's
    /// direction. Valid for any stack the engines build — literals from
    /// gate encodings are ignored.
    pub fn stack_seed(&self) -> WitnessSeed {
        let mut seed = WitnessSeed::default();
        for &lit in &self.stack {
            match self.lit_kind.get(&lit.var().0) {
                Some(&LitKind::Arch(b)) if lit.is_pos() => {
                    let b = BlockId(b);
                    if !seed.blocks.contains(&b) {
                        seed.blocks.push(b);
                    }
                }
                Some(&LitKind::Decision(c)) => {
                    if seed.branch_dir.is_none() {
                        seed.branch_dir = Some((BlockId(c), lit.is_pos()));
                    }
                }
                _ => {}
            }
        }
        seed
    }

    /// Decides the current stack from block reachability alone, when it
    /// lies in the decidable fragment: positive `A[b]` literals plus at
    /// most one decision literal whose branch block is itself required.
    ///
    /// The answer is exact, not conservative. In an acyclic A-CFG a set
    /// of blocks lies on a common root path iff every block is
    /// entry-reachable and every pair is reach-comparable (paths in a
    /// DAG concatenate without revisiting); a decision constraint
    /// additionally forces every required block after the branch to be
    /// reachable *through the chosen target*.
    fn screen_stack(&mut self) -> Option<bool> {
        let screen = self.screen.as_ref()?;
        self.blocks_buf.clear();
        let mut dec: Option<(u32, bool)> = None;
        for &lit in &self.stack {
            match self.lit_kind.get(&lit.var().0) {
                Some(&LitKind::Arch(b)) => {
                    if !lit.is_pos() {
                        return None;
                    }
                    self.blocks_buf.push(b);
                }
                Some(&LitKind::Decision(c)) => {
                    let then = lit.is_pos();
                    match dec {
                        None => dec = Some((c, then)),
                        Some((c0, then0)) if c0 == c => {
                            if then0 != then {
                                // d ∧ ¬d on the same branch.
                                return Some(false);
                            }
                        }
                        Some(_) => return None,
                    }
                }
                None => return None,
            }
        }
        let blocks = &self.blocks_buf;
        for &b in blocks {
            if !screen.reach.contains(0, b as usize) {
                return Some(false);
            }
        }
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                let (a, b) = (blocks[i] as usize, blocks[j] as usize);
                if a != b && !screen.reach.contains(a, b) && !screen.reach.contains(b, a) {
                    return Some(false);
                }
            }
        }
        if let Some((c, then)) = dec {
            // The constraint is only exactly checkable when the branch
            // block itself is required to execute.
            if !blocks.contains(&c) {
                return None;
            }
            let (then_t, else_t) = screen.targets[&c];
            let t = if then { then_t } else { else_t } as usize;
            for &b in blocks {
                if b == c {
                    continue;
                }
                if screen.reach.contains(c as usize, b as usize)
                    && !screen.reach.contains(t, b as usize)
                {
                    return Some(false);
                }
            }
        }
        Some(true)
    }

    /// Checks whether the current assumption stack is jointly
    /// satisfiable. Answered by the reachability pre-screen when
    /// possible; otherwise by the trie memo, then the solver.
    /// Allocation-free on screened and memoized queries.
    /// Once the attached governor (if any) trips, every call answers
    /// `false` — engines treat the remaining candidates as infeasible
    /// and drain quickly; the driver reports the function `Degraded`.
    pub fn check_stack(&mut self) -> bool {
        if !self.governor_gate() {
            return false;
        }
        if let Some(ans) = self.screen_stack() {
            self.stats.queries_avoided += 1;
            return ans;
        }
        self.stats.queries += 1;
        let node = self.memo.locate(&self.stack);
        if let Some(r) = self.memo.nodes[node].result {
            self.stats.memo_hits += 1;
            return r;
        }
        let t0 = Instant::now();
        let res = self.solve_stack_governed();
        self.stats.solve += t0.elapsed();
        if res.is_aborted() {
            // Not an answer: leave the memo untouched.
            return false;
        }
        let r = res.is_sat();
        self.memo.nodes[node].result = Some(r);
        r
    }

    /// Like [`Self::check_stack`] but returning the architectural path
    /// (executed blocks) of a witness, if satisfiable. Only the
    /// infeasible case can be screened — a feasible answer still needs
    /// the model.
    pub fn witness_path_stack(&mut self) -> Option<Vec<BlockId>> {
        if !self.governor_gate() {
            return None;
        }
        if self.screen_stack() == Some(false) {
            self.stats.queries_avoided += 1;
            return None;
        }
        self.stats.queries += 1;
        let node = self.memo.locate(&self.stack);
        if let Some(r) = &self.memo.nodes[node].path {
            self.stats.memo_hits += 1;
            return r.clone();
        }
        let t0 = Instant::now();
        let res = self.solve_stack_governed();
        self.stats.solve += t0.elapsed();
        let r = match res {
            SolveResult::Sat(m) => Some(
                self.arch
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| m.value(l))
                    .map(|(i, _)| BlockId(i as u32))
                    .collect(),
            ),
            SolveResult::Unsat(_) => None,
            // Not an answer: leave the memo untouched.
            SolveResult::Aborted(_) => return None,
        };
        self.memo.nodes[node].path = Some(r.clone());
        r
    }

    // ----- slice API (stack-independent) --------------------------------

    /// Checks whether the required literals are jointly satisfiable.
    ///
    /// Equivalent to pushing `required` onto an empty stack and calling
    /// [`Self::check_stack`]; shares the same memo.
    pub fn check(&mut self, required: &[Lit]) -> bool {
        let mark = self.mark();
        let base: Vec<Lit> = std::mem::take(&mut self.stack);
        self.stack.extend_from_slice(required);
        let r = self.check_stack();
        self.stack = base;
        debug_assert_eq!(self.mark(), mark);
        r
    }

    /// Like [`Self::check`] but returning the architectural path (executed
    /// blocks) of a witness, if satisfiable. Memoized like `check`.
    pub fn witness_path(&mut self, required: &[Lit]) -> Option<Vec<BlockId>> {
        let base: Vec<Lit> = std::mem::take(&mut self.stack);
        self.stack.extend_from_slice(required);
        let r = self.witness_path_stack();
        self.stack = base;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Saeg;
    use lcm_core::speculation::SpeculationConfig;

    fn feas(src: &str, f: &str) -> (Saeg, Feasibility) {
        let m = lcm_minic::compile(src).unwrap();
        let s = Saeg::build(&m, f, SpeculationConfig::default()).unwrap();
        let fe = Feasibility::new(&s);
        (s, fe)
    }

    #[test]
    fn straight_line_all_blocks_executed() {
        let (s, mut fe) = feas("int G; void f() { G = 1; G = 2; }", "f");
        let req: Vec<Lit> = s.topo_blocks().iter().map(|&b| fe.arch_lit(b)).collect();
        assert!(fe.check(&req));
    }

    #[test]
    fn diamond_sides_mutually_exclusive() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        // Find the two store blocks.
        let stores: Vec<_> = s
            .events
            .iter()
            .filter(|e| e.kind == crate::build::EventKind::Store)
            .collect();
        // Skip the parameter spill store (entry block).
        let body_stores: Vec<_> = stores
            .iter()
            .filter(|e| e.block != lcm_ir::BlockId(0))
            .collect();
        assert_eq!(body_stores.len(), 2);
        let l1 = fe.arch_lit(body_stores[0].block);
        let l2 = fe.arch_lit(body_stores[1].block);
        assert!(fe.check(&[l1]));
        assert!(fe.check(&[l2]));
        assert!(
            !fe.check(&[l1, l2]),
            "both sides of a diamond cannot co-execute"
        );
    }

    #[test]
    fn nested_if_requires_outer() {
        let (s, mut fe) = feas(
            "int G; void f(int a, int b) { if (a) { if (b) { G = 1; } } else { G = 2; } }",
            "f",
        );
        let inner_store = s
            .events
            .iter()
            .find(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        // inner store together with the else-side store: infeasible.
        let else_store = s
            .events
            .iter()
            .rfind(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        assert_ne!(inner_store.block, else_store.block);
        assert!(fe.check(&[fe.arch_lit(inner_store.block)]));
        let (a, b) = (
            fe.arch_lit(inner_store.block),
            fe.arch_lit(else_store.block),
        );
        assert!(!fe.check(&[a, b]));
    }

    #[test]
    fn witness_path_returns_consistent_blocks() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } G = 3; }",
            "f",
        );
        let last = s.events.iter().last().unwrap();
        let req = [fe.arch_lit(last.block)];
        let path = fe.witness_path(&req).unwrap();
        assert!(path.contains(&lcm_ir::BlockId(0)));
        assert!(path.contains(&last.block));
    }

    #[test]
    fn decision_literal_forces_direction() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        let then_lit = fe.arch_lit(br.then_bb);
        let else_lit = fe.arch_lit(br.else_bb);
        assert!(!fe.check(&[d, else_lit]));
        assert!(fe.check(&[d, then_lit]));
        assert!(!fe.check(&[!d, then_lit]));
    }

    #[test]
    fn stack_api_matches_slice_api() {
        let (s, mut fe) = feas(
            "int G; void f(int c, int d) { if (c) { G = 1; } if (d) { G = 2; } G = 3; }",
            "f",
        );
        let mut fresh = Feasibility::new(&s);
        let blocks = s.topo_blocks();
        // Exercise every pair through both APIs on independent instances.
        for &a in blocks {
            for &b in blocks {
                let req = [fe.arch_lit(a), fe.arch_lit(b)];
                let via_slice = fresh.check(&req);

                let m = fe.mark();
                fe.push(fe.arch_lit(a));
                fe.push(fe.arch_lit(b));
                let via_stack = fe.check_stack();
                fe.truncate(m);
                assert_eq!(via_slice, via_stack, "blocks {a:?},{b:?}");
            }
        }
        assert_eq!(fe.mark(), 0);
    }

    #[test]
    fn memo_hits_accumulate() {
        // Pre-screen disabled so the queries reach the memo layer.
        let m = lcm_minic::compile("int G; void f(int c) { if (c) { G = 1; } }").unwrap();
        let s = Saeg::build(&m, "f", SpeculationConfig::default()).unwrap();
        let mut fe = Feasibility::with_prefilter(&s, false);
        let lit = fe.arch_lit(s.topo_blocks()[0]);
        assert!(fe.check(&[lit]));
        assert!(fe.check(&[lit]));
        assert!(fe.check(&[lit, lit])); // dedups to the same trie node
        let st = fe.stats();
        assert_eq!(st.queries, 3);
        assert_eq!(st.memo_hits, 2);
        assert_eq!(st.queries_avoided, 0);
    }

    #[test]
    fn prescreen_counts_avoided_queries() {
        let (s, mut fe) = feas("int G; void f(int c) { if (c) { G = 1; } }", "f");
        let lit = fe.arch_lit(s.topo_blocks()[0]);
        assert!(fe.check(&[lit]));
        assert!(fe.check(&[lit]));
        let st = fe.stats();
        assert_eq!(st.queries, 0, "screened queries never reach the solver");
        assert_eq!(st.queries_avoided, 2);
    }

    #[test]
    fn prescreen_matches_solver_on_block_pairs_and_decisions() {
        let srcs = [
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } G = 3; }",
            "int G; void f(int a, int b) { if (a) { if (b) { G = 1; } } else { G = 2; } }",
            "int G; void f(int c, int d) { if (c) { G = 1; } if (d) { G = 2; } G = 3; }",
        ];
        for src in srcs {
            let m = lcm_minic::compile(src).unwrap();
            let s = Saeg::build(&m, "f", SpeculationConfig::default()).unwrap();
            let mut screened = Feasibility::new(&s);
            let mut solved = Feasibility::with_prefilter(&s, false);
            assert!(screened.screen.is_some());
            let blocks = s.topo_blocks().to_vec();
            for &a in &blocks {
                for &b in &blocks {
                    let req = [screened.arch_lit(a), screened.arch_lit(b)];
                    assert_eq!(
                        screened.check(&req),
                        solved.check(&req),
                        "{src}: {a:?},{b:?}"
                    );
                    // With one decision literal on a required branch.
                    for &c in &blocks {
                        if let Some(d) = screened.decision_lit(c) {
                            for dir in [d, !d] {
                                let req3 = [
                                    screened.arch_lit(a),
                                    screened.arch_lit(b),
                                    screened.arch_lit(c),
                                    dir,
                                ];
                                assert_eq!(
                                    screened.check(&req3),
                                    solved.check(&req3),
                                    "{src}: {a:?},{b:?} br {c:?}"
                                );
                            }
                        }
                    }
                }
            }
            // Everything decidable here lies in the screened fragment.
            assert_eq!(screened.stats().queries, 0);
            assert!(screened.stats().queries_avoided > 0);
        }
    }

    #[test]
    fn contradictory_decision_screens_infeasible() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        let b = fe.arch_lit(br.block);
        assert!(!fe.check(&[b, d, !d]));
        assert_eq!(fe.stats().queries, 0);
    }

    #[test]
    fn stack_seed_recovers_blocks_and_direction() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        fe.push(fe.arch_lit(br.block));
        fe.push(fe.arch_lit(br.block)); // duplicates collapse
        fe.push(!d);
        fe.push(fe.arch_lit(br.else_bb));
        let seed = fe.stack_seed();
        assert_eq!(seed.blocks, vec![br.block, br.else_bb]);
        assert_eq!(seed.branch_dir, Some((br.block, false)));
    }

    #[test]
    fn oracle_mode_matches_incremental_and_never_reuses() {
        let src = "int G; void f(int a, int b) { if (a) { if (b) { G = 1; } } else { G = 2; } }";
        let m = lcm_minic::compile(src).unwrap();
        let s = Saeg::build(&m, "f", SpeculationConfig::default()).unwrap();
        // Pre-screen off so every query is solver traffic.
        let mut inc = Feasibility::with_prefilter(&s, false);
        let mut fresh = Feasibility::with_prefilter(&s, false);
        fresh.set_incremental(false);
        let blocks = s.topo_blocks().to_vec();
        for &a in &blocks {
            for &b in &blocks {
                let req = [inc.arch_lit(a), inc.arch_lit(b)];
                assert_eq!(inc.check(&req), fresh.check(&req), "{a:?},{b:?}");
            }
        }
        assert!(
            inc.stats().solver_reuses > 0,
            "persistent solver must be reused"
        );
        assert_eq!(
            fresh.stats().solver_reuses,
            0,
            "oracle mode must never reuse a solver"
        );
    }

    #[test]
    fn cloned_feasibility_answers_independently() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        fe.push(d);
        let mut worker = fe.clone();
        // The clone carries the stack; both sides answer the same query,
        // then diverge without affecting each other.
        worker.push(worker.arch_lit(br.else_bb));
        assert!(!worker.check_stack());
        fe.push(fe.arch_lit(br.then_bb));
        assert!(fe.check_stack());
    }

    #[test]
    fn truncate_restores_outer_assumptions() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        fe.push(d);
        let m = fe.mark();
        fe.push(fe.arch_lit(br.else_bb));
        assert!(!fe.check_stack());
        fe.truncate(m);
        fe.push(fe.arch_lit(br.then_bb));
        assert!(fe.check_stack());
    }
}
