//! SAT encoding of architectural path feasibility (§5.2).
//!
//! Mirrors Fig. 7's edge formulas: each block gets an architectural-
//! execution literal `A[b]`; each conditional branch a decision literal;
//! `A[b] ⇔ ⋁ (A[p] ∧ edge taken)`. A leakage query asserts that its
//! required events are all architecturally (or, for the mispredicting
//! branch, transiently) executed and asks the solver for a consistent
//! branch-decision assignment.

use std::collections::HashMap;

use lcm_ir::{BlockId, Terminator};
use lcm_sat::cnf::Cnf;
use lcm_sat::{Lit, SolveResult};

use crate::build::Saeg;

/// A reusable feasibility checker over one S-AEG.
///
/// Queries are memoized: leakage engines re-ask the same path questions
/// for every chain sharing a speculation site.
#[derive(Debug)]
pub struct Feasibility {
    cnf: Cnf,
    arch: Vec<Lit>,
    decision: HashMap<u32, Lit>,
    memo: HashMap<Vec<Lit>, bool>,
    path_memo: HashMap<Vec<Lit>, Option<Vec<BlockId>>>,
}

impl Feasibility {
    /// Builds the path-constraint formula for the S-AEG's A-CFG.
    pub fn new(saeg: &Saeg) -> Self {
        let f = &saeg.acfg;
        let mut cnf = Cnf::new();
        let arch: Vec<Lit> = (0..f.blocks.len()).map(|_| cnf.fresh()).collect();
        let mut decision: HashMap<u32, Lit> = HashMap::new();
        for (bi, b) in f.iter_blocks() {
            if matches!(b.term, Terminator::CondBr { .. }) {
                decision.insert(bi.0, cnf.fresh());
            }
        }
        // Entry is executed.
        cnf.assert_lit(arch[0]);
        // In-edge literals per block.
        let mut in_edges: Vec<Vec<Lit>> = vec![Vec::new(); f.blocks.len()];
        for (bi, b) in f.iter_blocks() {
            match &b.term {
                Terminator::Br(t) => {
                    in_edges[t.0 as usize].push(arch[bi.0 as usize]);
                }
                Terminator::CondBr { then_bb, else_bb, .. } => {
                    let d = decision[&bi.0];
                    let taken = cnf.and(arch[bi.0 as usize], d);
                    let not_taken = cnf.and(arch[bi.0 as usize], !d);
                    in_edges[then_bb.0 as usize].push(taken);
                    in_edges[else_bb.0 as usize].push(not_taken);
                }
                Terminator::Ret(_) => {}
            }
        }
        for (bi, edges) in in_edges.iter().enumerate() {
            if bi == 0 {
                continue;
            }
            let any = cnf.or_all(edges);
            // arch[bi] <-> any
            cnf.assert_implies(arch[bi], any);
            cnf.assert_implies(any, arch[bi]);
        }
        Feasibility { cnf, arch, decision, memo: HashMap::new(), path_memo: HashMap::new() }
    }

    /// The literal asserting block `b` is architecturally executed.
    pub fn arch_lit(&self, b: BlockId) -> Lit {
        self.arch[b.0 as usize]
    }

    /// The branch-decision literal of the conditional branch terminating
    /// `b` (true = then-target taken architecturally), if any.
    pub fn decision_lit(&self, b: BlockId) -> Option<Lit> {
        self.decision.get(&b.0).copied()
    }

    /// Checks whether the required literals are jointly satisfiable.
    pub fn check(&mut self, required: &[Lit]) -> bool {
        let mut key: Vec<Lit> = required.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        let r = matches!(self.cnf.solver_mut().solve_with(required), SolveResult::Sat(_));
        self.memo.insert(key, r);
        r
    }

    /// Like [`Self::check`] but returning the architectural path (executed
    /// blocks) of a witness, if satisfiable. Memoized like `check`.
    pub fn witness_path(&mut self, required: &[Lit]) -> Option<Vec<BlockId>> {
        let mut key: Vec<Lit> = required.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(r) = self.path_memo.get(&key) {
            return r.clone();
        }
        let r = match self.cnf.solver_mut().solve_with(required) {
            SolveResult::Sat(m) => Some(
                self.arch
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| m.value(l))
                    .map(|(i, _)| BlockId(i as u32))
                    .collect(),
            ),
            SolveResult::Unsat(_) => None,
        };
        self.path_memo.insert(key, r.clone());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Saeg;
    use lcm_core::speculation::SpeculationConfig;

    fn feas(src: &str, f: &str) -> (Saeg, Feasibility) {
        let m = lcm_minic::compile(src).unwrap();
        let s = Saeg::build(&m, f, SpeculationConfig::default()).unwrap();
        let fe = Feasibility::new(&s);
        (s, fe)
    }

    #[test]
    fn straight_line_all_blocks_executed() {
        let (s, mut fe) = feas("int G; void f() { G = 1; G = 2; }", "f");
        let req: Vec<Lit> = s.topo_blocks().iter().map(|&b| fe.arch_lit(b)).collect();
        assert!(fe.check(&req));
    }

    #[test]
    fn diamond_sides_mutually_exclusive() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        // Find the two store blocks.
        let stores: Vec<_> = s
            .events
            .iter()
            .filter(|e| e.kind == crate::build::EventKind::Store)
            .collect();
        // Skip the parameter spill store (entry block).
        let body_stores: Vec<_> = stores
            .iter()
            .filter(|e| e.block != lcm_ir::BlockId(0))
            .collect();
        assert_eq!(body_stores.len(), 2);
        let l1 = fe.arch_lit(body_stores[0].block);
        let l2 = fe.arch_lit(body_stores[1].block);
        assert!(fe.check(&[l1]));
        assert!(fe.check(&[l2]));
        assert!(!fe.check(&[l1, l2]), "both sides of a diamond cannot co-execute");
    }

    #[test]
    fn nested_if_requires_outer() {
        let (s, mut fe) = feas(
            "int G; void f(int a, int b) { if (a) { if (b) { G = 1; } } else { G = 2; } }",
            "f",
        );
        let inner_store = s
            .events
            .iter().find(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        // inner store together with the else-side store: infeasible.
        let else_store = s
            .events
            .iter()
            .rfind(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        assert_ne!(inner_store.block, else_store.block);
        assert!(fe.check(&[fe.arch_lit(inner_store.block)]));
        let (a, b) = (fe.arch_lit(inner_store.block), fe.arch_lit(else_store.block));
        assert!(!fe.check(&[a, b]));
    }

    #[test]
    fn witness_path_returns_consistent_blocks() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } G = 3; }",
            "f",
        );
        let last = s.events.iter().last().unwrap();
        let req = [fe.arch_lit(last.block)];
        let path = fe.witness_path(&req).unwrap();
        assert!(path.contains(&lcm_ir::BlockId(0)));
        assert!(path.contains(&last.block));
    }

    #[test]
    fn decision_literal_forces_direction() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        let then_lit = fe.arch_lit(br.then_bb);
        let else_lit = fe.arch_lit(br.else_bb);
        assert!(!fe.check(&[d, else_lit]));
        assert!(fe.check(&[d, then_lit]));
        assert!(!fe.check(&[!d, then_lit]));
    }
}
