//! SAT encoding of architectural path feasibility (§5.2).
//!
//! Mirrors Fig. 7's edge formulas: each block gets an architectural-
//! execution literal `A[b]`; each conditional branch a decision literal;
//! `A[b] ⇔ ⋁ (A[p] ∧ edge taken)`. A leakage query asserts that its
//! required events are all architecturally (or, for the mispredicting
//! branch, transiently) executed and asks the solver for a consistent
//! branch-decision assignment.
//!
//! Engines drive queries through an **assumption stack** ([`Feasibility::push`],
//! [`Feasibility::mark`], [`Feasibility::truncate`]) instead of cloning a
//! base request per candidate, so the hot loops allocate nothing per
//! query; results are memoized on the (sorted, deduped) assumption set
//! and cache statistics are tracked in [`FeasStats`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lcm_ir::{BlockId, Terminator};
use lcm_sat::cnf::Cnf;
use lcm_sat::{Lit, SolveResult};

use crate::build::Saeg;

/// Query counters and phase timings for one [`Feasibility`] instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeasStats {
    /// Feasibility questions asked (including memo hits).
    pub queries: u64,
    /// Questions answered from the memo without touching the solver.
    pub memo_hits: u64,
    /// Time spent building the CNF encoding.
    pub encode: Duration,
    /// Time spent inside the SAT solver.
    pub solve: Duration,
}

/// A reusable feasibility checker over one S-AEG.
///
/// Queries are memoized: leakage engines re-ask the same path questions
/// for every chain sharing a speculation site.
#[derive(Debug)]
pub struct Feasibility {
    cnf: Cnf,
    arch: Vec<Lit>,
    decision: HashMap<u32, Lit>,
    memo: HashMap<Vec<Lit>, bool>,
    path_memo: HashMap<Vec<Lit>, Option<Vec<BlockId>>>,
    /// Current assumption set, manipulated via `push`/`mark`/`truncate`.
    stack: Vec<Lit>,
    /// Scratch buffer for the sorted/deduped memo key; reused across
    /// queries so a memo hit allocates nothing.
    key_buf: Vec<Lit>,
    stats: FeasStats,
}

impl Feasibility {
    /// Builds the path-constraint formula for the S-AEG's A-CFG.
    pub fn new(saeg: &Saeg) -> Self {
        let t0 = Instant::now();
        let f = &saeg.acfg;
        let mut cnf = Cnf::new();
        let arch: Vec<Lit> = (0..f.blocks.len()).map(|_| cnf.fresh()).collect();
        let mut decision: HashMap<u32, Lit> = HashMap::new();
        for (bi, b) in f.iter_blocks() {
            if matches!(b.term, Terminator::CondBr { .. }) {
                decision.insert(bi.0, cnf.fresh());
            }
        }
        // Entry is executed.
        cnf.assert_lit(arch[0]);
        // In-edge literals per block.
        let mut in_edges: Vec<Vec<Lit>> = vec![Vec::new(); f.blocks.len()];
        for (bi, b) in f.iter_blocks() {
            match &b.term {
                Terminator::Br(t) => {
                    in_edges[t.0 as usize].push(arch[bi.0 as usize]);
                }
                Terminator::CondBr {
                    then_bb, else_bb, ..
                } => {
                    let d = decision[&bi.0];
                    let taken = cnf.and(arch[bi.0 as usize], d);
                    let not_taken = cnf.and(arch[bi.0 as usize], !d);
                    in_edges[then_bb.0 as usize].push(taken);
                    in_edges[else_bb.0 as usize].push(not_taken);
                }
                Terminator::Ret(_) => {}
            }
        }
        for (bi, edges) in in_edges.iter().enumerate() {
            if bi == 0 {
                continue;
            }
            let any = cnf.or_all(edges);
            // arch[bi] <-> any
            cnf.assert_implies(arch[bi], any);
            cnf.assert_implies(any, arch[bi]);
        }
        let stats = FeasStats {
            encode: t0.elapsed(),
            ..FeasStats::default()
        };
        Feasibility {
            cnf,
            arch,
            decision,
            memo: HashMap::new(),
            path_memo: HashMap::new(),
            stack: Vec::new(),
            key_buf: Vec::new(),
            stats,
        }
    }

    /// The literal asserting block `b` is architecturally executed.
    pub fn arch_lit(&self, b: BlockId) -> Lit {
        self.arch[b.0 as usize]
    }

    /// The branch-decision literal of the conditional branch terminating
    /// `b` (true = then-target taken architecturally), if any.
    pub fn decision_lit(&self, b: BlockId) -> Option<Lit> {
        self.decision.get(&b.0).copied()
    }

    /// Query counters and timings accumulated so far.
    pub fn stats(&self) -> FeasStats {
        self.stats
    }

    // ----- assumption stack ---------------------------------------------

    /// Pushes an assumption onto the current query's requirement set.
    pub fn push(&mut self, lit: Lit) {
        self.stack.push(lit);
    }

    /// Pushes every literal in `lits`.
    pub fn push_all(&mut self, lits: &[Lit]) {
        self.stack.extend_from_slice(lits);
    }

    /// The current stack depth; pass to [`Self::truncate`] to restore.
    pub fn mark(&self) -> usize {
        self.stack.len()
    }

    /// Pops assumptions back to a depth previously taken with
    /// [`Self::mark`].
    pub fn truncate(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    /// Checks whether the current assumption stack is jointly
    /// satisfiable. Allocation-free on a memo hit.
    pub fn check_stack(&mut self) -> bool {
        self.key_buf.clear();
        self.key_buf.extend_from_slice(&self.stack);
        self.key_buf.sort_unstable();
        self.key_buf.dedup();
        self.stats.queries += 1;
        if let Some(&r) = self.memo.get(self.key_buf.as_slice()) {
            self.stats.memo_hits += 1;
            return r;
        }
        let t0 = Instant::now();
        let r = matches!(
            self.cnf.solver_mut().solve_with(&self.stack),
            SolveResult::Sat(_)
        );
        self.stats.solve += t0.elapsed();
        self.memo.insert(self.key_buf.clone(), r);
        r
    }

    /// Like [`Self::check_stack`] but returning the architectural path
    /// (executed blocks) of a witness, if satisfiable.
    pub fn witness_path_stack(&mut self) -> Option<Vec<BlockId>> {
        self.key_buf.clear();
        self.key_buf.extend_from_slice(&self.stack);
        self.key_buf.sort_unstable();
        self.key_buf.dedup();
        self.stats.queries += 1;
        if let Some(r) = self.path_memo.get(self.key_buf.as_slice()) {
            self.stats.memo_hits += 1;
            return r.clone();
        }
        let t0 = Instant::now();
        let r = match self.cnf.solver_mut().solve_with(&self.stack) {
            SolveResult::Sat(m) => Some(
                self.arch
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| m.value(l))
                    .map(|(i, _)| BlockId(i as u32))
                    .collect(),
            ),
            SolveResult::Unsat(_) => None,
        };
        self.stats.solve += t0.elapsed();
        self.path_memo.insert(self.key_buf.clone(), r.clone());
        r
    }

    // ----- slice API (stack-independent) --------------------------------

    /// Checks whether the required literals are jointly satisfiable.
    ///
    /// Equivalent to pushing `required` onto an empty stack and calling
    /// [`Self::check_stack`]; shares the same memo.
    pub fn check(&mut self, required: &[Lit]) -> bool {
        let mark = self.mark();
        let base: Vec<Lit> = std::mem::take(&mut self.stack);
        self.stack.extend_from_slice(required);
        let r = self.check_stack();
        self.stack = base;
        debug_assert_eq!(self.mark(), mark);
        r
    }

    /// Like [`Self::check`] but returning the architectural path (executed
    /// blocks) of a witness, if satisfiable. Memoized like `check`.
    pub fn witness_path(&mut self, required: &[Lit]) -> Option<Vec<BlockId>> {
        let base: Vec<Lit> = std::mem::take(&mut self.stack);
        self.stack.extend_from_slice(required);
        let r = self.witness_path_stack();
        self.stack = base;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Saeg;
    use lcm_core::speculation::SpeculationConfig;

    fn feas(src: &str, f: &str) -> (Saeg, Feasibility) {
        let m = lcm_minic::compile(src).unwrap();
        let s = Saeg::build(&m, f, SpeculationConfig::default()).unwrap();
        let fe = Feasibility::new(&s);
        (s, fe)
    }

    #[test]
    fn straight_line_all_blocks_executed() {
        let (s, mut fe) = feas("int G; void f() { G = 1; G = 2; }", "f");
        let req: Vec<Lit> = s.topo_blocks().iter().map(|&b| fe.arch_lit(b)).collect();
        assert!(fe.check(&req));
    }

    #[test]
    fn diamond_sides_mutually_exclusive() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        // Find the two store blocks.
        let stores: Vec<_> = s
            .events
            .iter()
            .filter(|e| e.kind == crate::build::EventKind::Store)
            .collect();
        // Skip the parameter spill store (entry block).
        let body_stores: Vec<_> = stores
            .iter()
            .filter(|e| e.block != lcm_ir::BlockId(0))
            .collect();
        assert_eq!(body_stores.len(), 2);
        let l1 = fe.arch_lit(body_stores[0].block);
        let l2 = fe.arch_lit(body_stores[1].block);
        assert!(fe.check(&[l1]));
        assert!(fe.check(&[l2]));
        assert!(
            !fe.check(&[l1, l2]),
            "both sides of a diamond cannot co-execute"
        );
    }

    #[test]
    fn nested_if_requires_outer() {
        let (s, mut fe) = feas(
            "int G; void f(int a, int b) { if (a) { if (b) { G = 1; } } else { G = 2; } }",
            "f",
        );
        let inner_store = s
            .events
            .iter()
            .find(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        // inner store together with the else-side store: infeasible.
        let else_store = s
            .events
            .iter()
            .rfind(|e| e.kind == crate::build::EventKind::Store && e.block != lcm_ir::BlockId(0))
            .unwrap();
        assert_ne!(inner_store.block, else_store.block);
        assert!(fe.check(&[fe.arch_lit(inner_store.block)]));
        let (a, b) = (
            fe.arch_lit(inner_store.block),
            fe.arch_lit(else_store.block),
        );
        assert!(!fe.check(&[a, b]));
    }

    #[test]
    fn witness_path_returns_consistent_blocks() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } G = 3; }",
            "f",
        );
        let last = s.events.iter().last().unwrap();
        let req = [fe.arch_lit(last.block)];
        let path = fe.witness_path(&req).unwrap();
        assert!(path.contains(&lcm_ir::BlockId(0)));
        assert!(path.contains(&last.block));
    }

    #[test]
    fn decision_literal_forces_direction() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        let then_lit = fe.arch_lit(br.then_bb);
        let else_lit = fe.arch_lit(br.else_bb);
        assert!(!fe.check(&[d, else_lit]));
        assert!(fe.check(&[d, then_lit]));
        assert!(!fe.check(&[!d, then_lit]));
    }

    #[test]
    fn stack_api_matches_slice_api() {
        let (s, mut fe) = feas(
            "int G; void f(int c, int d) { if (c) { G = 1; } if (d) { G = 2; } G = 3; }",
            "f",
        );
        let mut fresh = Feasibility::new(&s);
        let blocks = s.topo_blocks();
        // Exercise every pair through both APIs on independent instances.
        for &a in blocks {
            for &b in blocks {
                let req = [fe.arch_lit(a), fe.arch_lit(b)];
                let via_slice = fresh.check(&req);

                let m = fe.mark();
                fe.push(fe.arch_lit(a));
                fe.push(fe.arch_lit(b));
                let via_stack = fe.check_stack();
                fe.truncate(m);
                assert_eq!(via_slice, via_stack, "blocks {a:?},{b:?}");
            }
        }
        assert_eq!(fe.mark(), 0);
    }

    #[test]
    fn memo_hits_accumulate() {
        let (s, mut fe) = feas("int G; void f(int c) { if (c) { G = 1; } }", "f");
        let lit = fe.arch_lit(s.topo_blocks()[0]);
        assert!(fe.check(&[lit]));
        assert!(fe.check(&[lit]));
        assert!(fe.check(&[lit, lit])); // dedups to the same key
        let st = fe.stats();
        assert_eq!(st.queries, 3);
        assert_eq!(st.memo_hits, 2);
    }

    #[test]
    fn truncate_restores_outer_assumptions() {
        let (s, mut fe) = feas(
            "int G; void f(int c) { if (c) { G = 1; } else { G = 2; } }",
            "f",
        );
        let br = &s.branches[0];
        let d = fe.decision_lit(br.block).unwrap();
        fe.push(d);
        let m = fe.mark();
        fe.push(fe.arch_lit(br.else_bb));
        assert!(!fe.check_stack());
        fe.truncate(m);
        fe.push(fe.arch_lit(br.then_bb));
        assert!(fe.check_stack());
    }
}
