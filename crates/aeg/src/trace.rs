//! Dynamic LCM analysis (**extension**): lift a concrete execution trace
//! to a candidate execution and apply the §4.1 leakage definition.
//!
//! The paper's §4 works at the level of complete candidate executions:
//! architectural `com` vs a microarchitectural `comx` produced by real
//! hardware. This module produces exactly those objects from a concrete
//! interpreter run:
//!
//! * `rf`/`co` come from the recorded trace (who actually wrote what);
//! * `rfx`/`cox` come from simulating the paper's xstate abstraction — an
//!   infinitely-sized direct-mapped cache (one line per address, §5.2):
//!   every fill is recorded and subsequent same-line accesses hit it;
//! * one ⊥ observer probes every line the program touched (the paper's
//!   worst-case attacker who can probe the whole cache).
//!
//! [`lcm_core::detect_leakage`] then reports the *non-transient* leakage
//! of the run — e.g. the secret-indexed table loads of an AES-style
//! kernel — which Spectre-focused engines do not target (the §7 remark
//! that LCMs "are not limited to reasoning about vulnerabilities
//! involving transient execution").

use std::collections::HashMap;

use lcm_core::exec::{Execution, ExecutionBuilder};
use lcm_core::EventId;
use lcm_ir::interp::TraceEvent;
use lcm_ir::{Inst, Module};

use crate::addr::feeding_loads;

/// Lifts a recorded trace to a complete candidate execution.
///
/// Events appear in trace order under `po`; `rf`/`co` reflect the
/// concrete run; `rfx`/`cox` reflect the simulated cache; one observer per
/// touched line probes the final state. Dependency edges (`addr`,
/// `addr_gep`, `data`) are recovered from the static use-def chains of
/// each instruction, bound to the *most recent* execution of each feeding
/// load.
pub fn execution_from_trace(module: &Module, trace: &[TraceEvent]) -> Execution {
    let mut b = ExecutionBuilder::new();
    let mut events: Vec<EventId> = Vec::with_capacity(trace.len());
    // Concrete machine state mirrored into the builder:
    let mut last_store: HashMap<i64, EventId> = HashMap::new(); // rf sources
    let mut co_last: HashMap<i64, EventId> = HashMap::new(); // co chains
    let mut line_filler: HashMap<i64, EventId> = HashMap::new(); // cache sim
                                                                 // Most recent event for each (func, inst), for dependency binding.
    let mut last_exec: HashMap<(u32, u32), EventId> = HashMap::new();
    let mut prev: Option<EventId> = None;
    // Loads feeding conditions of branches executed so far: dynamic ctrl
    // sources for everything that follows.
    let mut ctrl_sources: Vec<EventId> = Vec::new();

    for te in trace {
        if te.is_branch {
            let func = &module.functions[te.func as usize];
            for (load_inst, _) in feeding_loads(func, te.inst) {
                if let Some(&src) = last_exec.get(&(te.func, load_inst.0)) {
                    if !ctrl_sources.contains(&src) {
                        ctrl_sources.push(src);
                    }
                }
            }
            continue;
        }
        let loc = format!("m{:x}", te.addr);
        let func = &module.functions[te.func as usize];
        let label = format!(
            "%{}@{}: {}",
            te.inst.0,
            func.name,
            if te.is_store { "W" } else { "R" }
        );
        let ev = if te.is_store {
            let e = b.write(&loc);
            if let Some(&w) = co_last.get(&te.addr) {
                b.co(w, e);
            }
            co_last.insert(te.addr, e);
            last_store.insert(te.addr, e);
            e
        } else {
            // Hit if the line is filled; otherwise a miss (RMW fill).
            let filled = line_filler.get(&te.addr).copied();
            let e = if filled.is_some() {
                b.read_hit(&loc)
            } else {
                b.read(&loc)
            };
            if let Some(&w) = last_store.get(&te.addr) {
                b.rf(w, e);
            }
            e
        };
        b.set_label(ev, &label);
        // Cache simulation: hits read the filler's line; misses and stores
        // (write-allocate) fill it themselves.
        match line_filler.get(&te.addr).copied() {
            Some(filler) => {
                b.rfx(filler, ev);
                // Stores also overwrite the line.
                if te.is_store {
                    b.cox(filler, ev);
                    line_filler.insert(te.addr, ev);
                }
                // Read hits leave the filler in place.
            }
            None => {
                // Miss: the event fills the line (rfx from ⊤ by builder
                // completion).
                line_filler.insert(te.addr, ev);
            }
        }
        // Dependencies from static use-def chains, bound to the latest
        // execution of each feeding load.
        let (addr_operand, value_operand) = match func.inst(te.inst) {
            Inst::Load { addr, .. } => (Some(*addr), None),
            Inst::Store { addr, value } => (Some(*addr), Some(*value)),
            _ => (None, None),
        };
        if let Some(a) = addr_operand {
            for (load_inst, via_gep) in feeding_loads(func, a) {
                if let Some(&src) = last_exec.get(&(te.func, load_inst.0)) {
                    if via_gep {
                        b.addr_gep(src, ev);
                    } else {
                        b.addr(src, ev);
                    }
                }
            }
        }
        if let Some(v) = value_operand {
            for (load_inst, _) in feeding_loads(func, v) {
                if let Some(&src) = last_exec.get(&(te.func, load_inst.0)) {
                    b.data(src, ev);
                }
            }
        }
        for &src in &ctrl_sources {
            if src != ev {
                b.ctrl(src, ev);
            }
        }
        last_exec.insert((te.func, te.inst.0), ev);
        if let Some(p) = prev {
            b.po(p, ev);
        }
        prev = Some(ev);
        events.push(ev);
    }

    // Worst-case attacker: probe every touched line.
    let mut lines: Vec<(i64, EventId)> = line_filler.into_iter().collect();
    lines.sort_unstable();
    for (addr, filler) in lines {
        let o = b.observe(&format!("m{addr:x}"));
        if let Some(p) = prev {
            b.po(p, o);
        }
        b.rfx(filler, o);
        prev = Some(o);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::taxonomy::TransmitterClass;
    use lcm_core::{detect_leakage, Transmitter};
    use lcm_ir::interp::Machine;

    fn traced_exec(
        src: &str,
        fname: &str,
        args: &[i64],
        secrets: &[(&str, u32, i64)],
    ) -> Execution {
        let m = lcm_minic::compile(src).unwrap();
        let mut mach = Machine::new(&m);
        for &(g, i, v) in secrets {
            mach.set_global(g, i, v);
        }
        let (_, trace) = mach.call_traced(fname, args, 1_000_000).unwrap();
        assert!(!trace.is_empty());
        execution_from_trace(&m, &trace)
    }

    fn data_transmitters(ts: &[Transmitter]) -> usize {
        ts.iter()
            .filter(|t| t.class.severity_rank() >= TransmitterClass::Data.severity_rank())
            .count()
    }

    #[test]
    fn aes_style_table_lookup_leaks_non_transiently() {
        // sbox[state ^ key]: the table load's address carries the secret —
        // a data transmitter with *no* speculation involved.
        let src = r#"
            int sbox[256]; int sec_key[4]; int out;
            void round(int s) {
                out = sbox[(s ^ sec_key[0]) & 255];
            }"#;
        let x = traced_exec(src, "round", &[0x37], &[("sec_key", 0, 0x5a)]);
        assert!(x.well_formed().is_ok(), "{:?}", x.well_formed());
        let report = detect_leakage(&x);
        assert!(!report.is_clean());
        assert!(
            data_transmitters(&report.transmitters) >= 1,
            "secret-indexed table load must be a DT: {:?}",
            report.summary()
        );
    }

    #[test]
    fn constant_time_code_has_no_data_transmitters() {
        // tea-style: all indices constant; only address transmitters with
        // fixed addresses remain (the program's footprint, not its data).
        let src = r#"
            uint32_t v0s; uint32_t k0; uint32_t k1;
            void ct(void) {
                uint32_t v = v0s;
                v += ((v << 4) + k0) ^ ((v >> 5) + k1);
                v0s = v;
            }"#;
        let x = traced_exec(src, "ct", &[], &[("k0", 0, 123), ("k1", 0, 456)]);
        let report = detect_leakage(&x);
        assert_eq!(
            data_transmitters(&report.transmitters),
            0,
            "constant-time code leaks no data: {:?}",
            report.summary()
        );
    }

    #[test]
    fn cache_simulation_produces_hits_after_fills() {
        let src = "int A[8]; int t; void f() { t = A[3] + A[3]; }";
        let x = traced_exec(src, "f", &[], &[]);
        // Two reads of A[3]: the second hits the first's fill.
        let hit = x
            .events()
            .iter()
            .filter(|e| e.kind() == lcm_core::EventKind::Read && !e.writes_xstate())
            .count();
        assert!(hit >= 1, "second access is a simulated cache hit");
        // And the rf-NI receiver/transmitter pair reflects it.
        let report = detect_leakage(&x);
        assert!(!report.receivers.is_empty());
    }

    #[test]
    fn stores_update_the_simulated_line() {
        let src = "int G; int t; void f(int v) { G = v; t = G; }";
        let x = traced_exec(src, "f", &[7], &[]);
        assert!(x.well_formed().is_ok(), "{:?}", x.well_formed());
        // The reload of G reads the store's fill: rf and rfx agree, so G's
        // chain contributes no rf-NI violation between program events.
        let report = detect_leakage(&x);
        for v in &report.violations {
            let recv = x.event(v.receiver);
            assert_eq!(
                recv.kind(),
                lcm_core::EventKind::Observer,
                "only observer probes deviate: {v:?}"
            );
        }
    }

    #[test]
    fn trace_execution_is_tso_consistent() {
        use lcm_core::mcm::{ConsistencyModel, Tso};
        let src = "int A[8]; int t; void f(int i) { A[i & 7] = 1; t = A[i & 7]; }";
        let x = traced_exec(src, "f", &[3], &[]);
        assert!(
            Tso.check(&x).is_ok(),
            "concrete runs are trivially consistent"
        );
    }
}
