//! A mini-C front end lowering to [`lcm_ir`] at `clang -O0` fidelity.
//!
//! Clou analyzes C compiled with `clang -O0` (§5). Two `-O0` behaviours are
//! load-bearing for the paper's findings and are reproduced faithfully here:
//!
//! * **parameters and locals live on the stack** — every variable access is
//!   a `load`/`store` through an `alloca`, which is exactly why Spectre v4
//!   (STL) gadgets can bypass the spill store of an index (§6.1), and why
//!   `clang -O0` "disregards the `register` keyword" (the paper repaired
//!   that by hand; we support `register` as *actually* keeping the variable
//!   in a virtual register so both variants can be expressed);
//! * **array indexing lowers to `getelementptr`** — the `addr_gep`
//!   dependency class (§5.2) that Clou-pht uses to filter benign leaks.
//!
//! The accepted language: word-sized integer types (`int`, `uint8_t`,
//! `uint32_t`, `uint64_t`, `size_t`, `char`, …— all modelled as one
//! abstract word), pointers (any depth), global arrays, functions,
//! `if`/`else`, `while`, `for`, short-circuit `&&`/`||`, the ternary
//! operator, compound assignment, `sizeof`, and the `lfence()` intrinsic.
//!
//! # Examples
//!
//! ```
//! let module = lcm_minic::compile(r#"
//!     int A[16]; int B[256]; int size_A; int tmp;
//!     void victim(int y) {
//!         if (y < size_A)
//!             tmp &= B[A[y]];
//!     }
//! "#).unwrap();
//! assert!(module.function("victim").is_some());
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinAst, Expr, FuncDef, GlobalDecl, Program, Stmt, TypeSpec, UnAst};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, ParseError};

use lcm_ir::Module;

/// Front-end errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Lowering error (e.g. undeclared identifier).
    Lower(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LexError> for CompileError {
    fn from(e: LexError) -> Self {
        CompileError::Lex(e)
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<CompileError> for lcm_core::govern::AnalysisError {
    fn from(e: CompileError) -> Self {
        lcm_core::govern::AnalysisError::MalformedIr {
            message: e.to_string(),
        }
    }
}

/// Compiles mini-C source to an IR module.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first lexical, syntactic, or
/// lowering problem.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let tokens = lex(src)?;
    let program = parse(&tokens)?;
    lower::lower(&program).map_err(CompileError::Lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::interp::{InterpOutcome, Machine};
    use lcm_ir::verify::verify_module;

    fn run_fn(src: &str, f: &str, args: &[i64]) -> Option<i64> {
        let m = compile(src).unwrap();
        assert_eq!(verify_module(&m), Vec::<String>::new());
        let mut mach = Machine::new(&m);
        match mach.call(f, args, 1_000_000).unwrap() {
            InterpOutcome::Returned(v) => v,
        }
    }

    #[test]
    fn arithmetic_end_to_end() {
        let src = "int f(int x, int y) { return (x + y) * 2 - x % 3; }";
        assert_eq!(run_fn(src, "f", &[5, 7]), Some(22));
    }

    #[test]
    fn locals_spill_and_reload() {
        let src = "int f(int x) { int a; int b; a = x + 1; b = a * a; return b; }";
        assert_eq!(run_fn(src, "f", &[3]), Some(16));
    }

    #[test]
    fn global_array_roundtrip() {
        let src = "int A[8]; int f(int i) { A[i] = 42; return A[i] + 1; }";
        assert_eq!(run_fn(src, "f", &[2]), Some(43));
    }

    #[test]
    fn if_else_branches() {
        let src = "int f(int x) { if (x < 10) return 1; else return 2; }";
        assert_eq!(run_fn(src, "f", &[5]), Some(1));
        assert_eq!(run_fn(src, "f", &[15]), Some(2));
    }

    #[test]
    fn while_loop_sums() {
        let src = "int f(int n) { int s; int i; s = 0; i = 0; while (i < n) { s += i; i += 1; } return s; }";
        assert_eq!(run_fn(src, "f", &[0]), Some(0));
        assert_eq!(run_fn(src, "f", &[4]), Some(6));
    }

    #[test]
    fn for_loop_sums() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i += 1) s += i; return s; }";
        assert_eq!(run_fn(src, "f", &[5]), Some(10));
    }

    #[test]
    fn short_circuit_and() {
        // Division by zero would return 0 (total interp), so use a store
        // side effect to observe circuiting.
        let src = "int G; int f(int x) { if (x > 0 && set() ) return G; return G; } int set() { G = 7; return 1; }";
        assert_eq!(run_fn(src, "f", &[1]), Some(7));
        assert_eq!(run_fn(src, "f", &[0]), Some(0));
    }

    #[test]
    fn short_circuit_or() {
        let src = "int G; int set() { G = 9; return 1; } int f(int x) { if (x > 0 || set()) return G; return G; }";
        assert_eq!(run_fn(src, "f", &[1]), Some(0)); // set() not called
        assert_eq!(run_fn(src, "f", &[0]), Some(9));
    }

    #[test]
    fn ternary_expression() {
        let src = "int f(int x) { return x > 3 ? 10 : 20; }";
        assert_eq!(run_fn(src, "f", &[4]), Some(10));
        assert_eq!(run_fn(src, "f", &[1]), Some(20));
    }

    #[test]
    fn pointers_and_deref() {
        let src = "int G; int f(int v) { int *p; p = &G; *p = v; return G + *p; }";
        assert_eq!(run_fn(src, "f", &[21]), Some(42));
    }

    #[test]
    fn double_pointer() {
        let src = "int G; int f(int v) { int *p; int **pp; p = &G; pp = &p; **pp = v; return G; }";
        assert_eq!(run_fn(src, "f", &[5]), Some(5));
    }

    #[test]
    fn calls_between_functions() {
        let src =
            "int add(int a, int b) { return a + b; } int f(int x) { return add(x, add(x, 1)); }";
        assert_eq!(run_fn(src, "f", &[10]), Some(21));
    }

    #[test]
    fn compound_assignment_operators() {
        let src = "int f(int x) { int a = x; a += 3; a -= 1; a *= 2; a &= 255; a |= 1; a ^= 2; a <<= 1; a >>= 1; return a; }";
        assert_eq!(run_fn(src, "f", &[10]), Some(27));
    }

    #[test]
    fn sizeof_global_array() {
        let src = "int A[16]; int f() { return sizeof(A); }";
        assert_eq!(run_fn(src, "f", &[]), Some(16));
    }

    #[test]
    fn spectre_v1_shape_has_gep_dependencies() {
        let m = compile(
            "int A[16]; int B[256]; int size_A; int tmp;\n             void victim(int y) { if (y < size_A) { tmp &= B[A[y]]; } }",
        )
        .unwrap();
        let f = m.function("victim").unwrap();
        let geps = f
            .insts
            .iter()
            .filter(|i| matches!(i, lcm_ir::Inst::Gep { .. }))
            .count();
        assert!(geps >= 2, "expected nested gep indexing, got {geps}");
    }

    #[test]
    fn parameters_are_spilled_to_stack() {
        // clang -O0 fidelity: the parameter is stored to an alloca and
        // reloaded at each use.
        let m = compile("int f(int x) { return x + x; }").unwrap();
        let f = m.function("f").unwrap();
        let stores = f
            .insts
            .iter()
            .filter(|i| matches!(i, lcm_ir::Inst::Store { .. }))
            .count();
        let loads = f
            .insts
            .iter()
            .filter(|i| matches!(i, lcm_ir::Inst::Load { .. }))
            .count();
        assert_eq!(stores, 1, "param spilled once");
        assert_eq!(loads, 2, "each use reloads");
    }

    #[test]
    fn register_keyword_keeps_value_out_of_memory() {
        let m = compile("int f(register int x) { return x + x; }").unwrap();
        let f = m.function("f").unwrap();
        assert!(
            !f.insts
                .iter()
                .any(|i| matches!(i, lcm_ir::Inst::Store { .. })),
            "register parameter must not be spilled"
        );
    }

    #[test]
    fn lfence_intrinsic_lowers_to_fence() {
        let m = compile("void f() { lfence(); }").unwrap();
        let f = m.function("f").unwrap();
        assert!(f.insts.iter().any(|i| matches!(i, lcm_ir::Inst::Fence)));
    }

    #[test]
    fn secret_globals_marked_by_convention() {
        let m = compile("int sec_key[4]; int pub_data[4]; void f() {}").unwrap();
        assert!(m.global("sec_key").unwrap().1.secret);
        assert!(!m.global("pub_data").unwrap().1.secret);
    }

    #[test]
    fn pointer_global_marked() {
        let m = compile("int *table; int f() { return table[0]; }").unwrap();
        assert!(m.global("table").unwrap().1.is_ptr);
    }

    #[test]
    fn unknown_identifier_reports_error() {
        let e = compile("int f() { return nope; }").unwrap_err();
        assert!(matches!(e, CompileError::Lower(_)));
    }

    #[test]
    fn syntax_error_reported() {
        assert!(matches!(
            compile("int f( {").unwrap_err(),
            CompileError::Parse(_)
        ));
    }

    #[test]
    fn array_write_and_negative_unary() {
        let src = "int A[4]; int f(int i) { A[i] = -5; return -A[i]; }";
        assert_eq!(run_fn(src, "f", &[1]), Some(5));
    }

    #[test]
    fn not_and_bitnot() {
        let src = "int f(int x) { return !x + ~x; }";
        assert_eq!(run_fn(src, "f", &[0]), Some(0)); // 1 + (-1)
        assert_eq!(run_fn(src, "f", &[5]), Some(-6)); // 0 + (-6)
    }

    #[test]
    fn global_scalar_init_applied() {
        let src = "int G = 5; int f() { return G; }";
        assert_eq!(run_fn(src, "f", &[]), Some(5));
    }

    #[test]
    fn break_exits_innermost_loop() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < 100; i++) { if (i >= n) break; s += i; } return s; }";
        assert_eq!(run_fn(src, "f", &[4]), Some(6));
        assert_eq!(run_fn(src, "f", &[0]), Some(0));
    }

    #[test]
    fn continue_skips_iteration() {
        let src = "int f(int n) { int s = 0; int i = 0; while (i < n) { i++; if (i == 2) continue; s += i; } return s; }";
        // 1 + 3 + 4 = 8 for n = 4 (2 skipped)
        assert_eq!(run_fn(src, "f", &[4]), Some(8));
    }

    #[test]
    fn nested_break_targets_inner_loop() {
        let src = "int f() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 10; j++) { if (j == 2) break; s += 1; } } return s; }";
        assert_eq!(run_fn(src, "f", &[]), Some(6));
    }

    #[test]
    fn increment_and_decrement() {
        let src = "int f(int x) { x++; x++; x--; return x; }";
        assert_eq!(run_fn(src, "f", &[10]), Some(11));
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let src =
            "int f(int n) { int s = 0; int i = 0; do { s += 10; i++; } while (i < n); return s; }";
        assert_eq!(
            run_fn(src, "f", &[0]),
            Some(10),
            "body runs once even when cond is false"
        );
        assert_eq!(run_fn(src, "f", &[2]), Some(20));
    }

    #[test]
    fn do_while_supports_break_continue() {
        let src = "int f() { int s = 0; int i = 0; do { i++; if (i == 2) continue; if (i > 3) break; s += i; } while (1); return s; }";
        // i=1: s=1; i=2: skipped; i=3: s=4; i=4: break.
        assert_eq!(run_fn(src, "f", &[]), Some(4));
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let e = compile("void f() { break; }").unwrap_err();
        assert!(matches!(e, CompileError::Lower(_)));
    }
}
