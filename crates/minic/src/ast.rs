//! Abstract syntax tree for mini-C.

/// A parsed type: word-sized base type plus pointer depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeSpec {
    /// `true` for `void` with zero pointer depth.
    pub is_void: bool,
    /// Number of `*`s.
    pub ptr_depth: usize,
    /// `register`-qualified (kept in a virtual register, never spilled).
    pub is_register: bool,
}

impl TypeSpec {
    /// A plain word-sized value type.
    pub fn word() -> Self {
        TypeSpec {
            is_void: false,
            ptr_depth: 0,
            is_register: false,
        }
    }

    /// `true` if the type is a pointer.
    pub fn is_ptr(&self) -> bool {
        self.ptr_depth > 0
    }
}

/// Binary AST operators (including short-circuit forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinAst {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// Unary AST operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnAst {
    Neg,
    Not,
    BitNot,
    Deref,
    AddrOf,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Identifier reference.
    Ident(String),
    /// Binary operation.
    Bin(BinAst, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnAst, Box<Expr>),
    /// Array indexing `base[index]` (lowered to `gep`).
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Ternary `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` (also used for compound forms after
    /// desugaring).
    Assign(Box<Expr>, Box<Expr>),
    /// `sizeof(ident)`.
    SizeOf(String),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration: type, name, optional array size, optional
    /// initializer.
    Decl(TypeSpec, String, Option<u32>, Option<Expr>),
    /// Expression statement.
    Expr(Expr),
    /// `if` with optional `else`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while` loop.
    While(Expr, Vec<Stmt>),
    /// `do { .. } while (cond);` loop.
    DoWhile(Vec<Stmt>, Expr),
    /// `return`.
    Return(Option<Expr>),
    /// `lfence()` speculation barrier.
    Fence,
    /// `break;` out of the innermost loop.
    Break,
    /// `continue;` to the innermost loop header.
    Continue,
    /// Block (scoping is flat in mini-C; kept for structure).
    Block(Vec<Stmt>),
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Type.
    pub ty: TypeSpec,
    /// Name.
    pub name: String,
    /// Array size (1 for scalars).
    pub size: u32,
    /// Initial words.
    pub init: Vec<i64>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Return type.
    pub ret: TypeSpec,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(TypeSpec, String)>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in definition order.
    pub functions: Vec<FuncDef>,
}
