//! Recursive-descent parser for mini-C.

use std::fmt;

use crate::ast::*;
use crate::lexer::{Token, TokenKind};

/// Syntax error with source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected / found.
    pub message: String,
    /// 1-based source line (0 at end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl std::error::Error for ParseError {}

const TYPE_WORDS: &[&str] = &[
    "int",
    "char",
    "void",
    "long",
    "short",
    "unsigned",
    "signed",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "size_t",
    "ssize_t",
    "bool",
    "uintptr_t",
];
const QUALIFIERS: &[&str] = &[
    "const", "volatile", "static", "register", "extern", "inline",
];

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let mut prog = Program::default();
    while !p.at_end() {
        p.parse_top(&mut prog)?;
    }
    Ok(prog)
}

impl<'t> Parser<'t> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos).map_or(0, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(self.toks.get(self.pos), Some(Token { kind: TokenKind::Punct(q), .. }) if *q == p)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`"))
        }
    }

    fn eat_ident_exact(&mut self, word: &str) -> bool {
        if self.peek_ident() == Some(word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.toks.get(self.pos) {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.toks.get(self.pos) {
            Some(Token {
                kind: TokenKind::Int(v),
                ..
            }) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => self.err("expected integer literal"),
        }
    }

    /// An array dimension: a positive integer literal that fits in `u32`.
    /// Rejects negative, zero, and oversized sizes instead of silently
    /// wrapping through an `as u32` cast.
    fn expect_array_size(&mut self) -> Result<u32, ParseError> {
        let v = self.expect_int()?;
        match u32::try_from(v) {
            Ok(n) if n > 0 => Ok(n),
            _ => self.err(format!("invalid array size {v}")),
        }
    }

    /// Parses a type if one starts here.
    fn try_type(&mut self) -> Option<TypeSpec> {
        let start = self.pos;
        let mut is_register = false;
        let mut saw_base = false;
        let mut is_void = false;
        loop {
            match self.peek_ident() {
                Some(w) if QUALIFIERS.contains(&w) => {
                    if w == "register" {
                        is_register = true;
                    }
                    self.pos += 1;
                }
                Some(w) if TYPE_WORDS.contains(&w) => {
                    if w == "void" {
                        is_void = true;
                    }
                    saw_base = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_base {
            self.pos = start;
            return None;
        }
        let mut ptr_depth = 0;
        while self.eat_punct("*") {
            ptr_depth += 1;
        }
        if ptr_depth > 0 {
            is_void = false; // void* is a pointer
        }
        Some(TypeSpec {
            is_void,
            ptr_depth,
            is_register,
        })
    }

    fn parse_top(&mut self, prog: &mut Program) -> Result<(), ParseError> {
        let Some(ty) = self.try_type() else {
            return self.err("expected declaration");
        };
        let name = self.expect_ident()?;
        if self.peek_punct("(") {
            prog.functions.push(self.parse_func(ty, name)?);
            return Ok(());
        }
        // Global declaration(s), comma-separated.
        let mut ty = ty;
        let mut name = name;
        loop {
            let mut size = 1u32;
            if self.eat_punct("[") {
                size = self.expect_array_size()?;
                self.expect_punct("]")?;
                // multi-dimensional arrays flattened
                while self.eat_punct("[") {
                    let dim = self.expect_array_size()?;
                    size = match size.checked_mul(dim) {
                        Some(s) => s,
                        None => return self.err("array size overflows u32"),
                    };
                    self.expect_punct("]")?;
                }
            }
            let mut init = Vec::new();
            if self.eat_punct("=") {
                if self.eat_punct("{") {
                    if !self.peek_punct("}") {
                        loop {
                            init.push(self.parse_const_int()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct("}")?;
                } else {
                    init.push(self.parse_const_int()?);
                }
            }
            prog.globals.push(GlobalDecl {
                ty: ty.clone(),
                name,
                size,
                init,
            });
            if self.eat_punct(",") {
                // subsequent declarators share the base type
                let mut depth = 0;
                while self.eat_punct("*") {
                    depth += 1;
                }
                ty = TypeSpec {
                    ptr_depth: depth,
                    ..ty.clone()
                };
                name = self.expect_ident()?;
                continue;
            }
            self.expect_punct(";")?;
            return Ok(());
        }
    }

    fn parse_const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct("-");
        let v = self.expect_int()?;
        Ok(if neg { -v } else { v })
    }

    fn parse_func(&mut self, ret: TypeSpec, name: String) -> Result<FuncDef, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.peek_punct(")") {
            if self.eat_ident_exact("void") && self.peek_punct(")") {
                // f(void)
            } else {
                loop {
                    let ty = self.try_type().ok_or_else(|| ParseError {
                        message: "expected parameter type".into(),
                        line: self.line(),
                    })?;
                    let pname = self.expect_ident()?;
                    // array parameter decays to pointer
                    let ty = if self.eat_punct("[") {
                        let _ = self.expect_int();
                        self.expect_punct("]")?;
                        TypeSpec {
                            ptr_depth: ty.ptr_depth + 1,
                            ..ty
                        }
                    } else {
                        ty
                    };
                    params.push((ty, pname));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let body = self.parse_block_body()?;
        Ok(FuncDef {
            ret,
            name,
            params,
            body,
        })
    }

    fn parse_block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return self.err("unexpected end of input in block");
            }
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.parse_block_body()?));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Block(Vec::new()));
        }
        if self.eat_ident_exact("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_s = vec![self.parse_stmt()?];
            let else_s = if self.eat_ident_exact("else") {
                vec![self.parse_stmt()?]
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then_s, else_s));
        }
        if self.eat_ident_exact("do") {
            let body = vec![self.parse_stmt()?];
            if !self.eat_ident_exact("while") {
                return self.err("expected `while` after do-body");
            }
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_ident_exact("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = vec![self.parse_stmt()?];
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_ident_exact("for") {
            // for(init; cond; step) body  ==>  { init; while(cond) { body; step } }
            self.expect_punct("(")?;
            let init = if self.peek_punct(";") {
                None
            } else {
                Some(self.parse_simple_stmt()?)
            };
            self.expect_punct(";")?;
            let cond = if self.peek_punct(";") {
                Expr::Int(1)
            } else {
                self.parse_expr()?
            };
            self.expect_punct(";")?;
            let step = if self.peek_punct(")") {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(")")?;
            let mut body = vec![self.parse_stmt()?];
            if let Some(s) = step {
                body.push(Stmt::Expr(s));
            }
            let mut block = Vec::new();
            if let Some(i) = init {
                block.push(i);
            }
            block.push(Stmt::While(cond, body));
            return Ok(Stmt::Block(block));
        }
        if self.eat_ident_exact("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_ident_exact("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_ident_exact("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        let s = self.parse_simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A declaration or expression without trailing `;` (for `for` inits).
    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if let Some(ty) = self.try_type() {
            let name = self.expect_ident()?;
            let mut size = None;
            if self.eat_punct("[") {
                size = Some(self.expect_array_size()?);
                self.expect_punct("]")?;
            }
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl(ty, name, size, init));
        }
        // lfence intrinsic.
        if self.peek_ident() == Some("lfence") || self.peek_ident() == Some("__lfence") {
            self.pos += 1;
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            return Ok(Stmt::Fence);
        }
        Ok(Stmt::Expr(self.parse_expr()?))
    }

    // Expression grammar, lowest precedence first.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_ternary()?;
        for (tok, op) in [
            ("+=", Some(BinAst::Add)),
            ("-=", Some(BinAst::Sub)),
            ("*=", Some(BinAst::Mul)),
            ("/=", Some(BinAst::Div)),
            ("%=", Some(BinAst::Rem)),
            ("&=", Some(BinAst::BitAnd)),
            ("|=", Some(BinAst::BitOr)),
            ("^=", Some(BinAst::BitXor)),
            ("<<=", Some(BinAst::Shl)),
            (">>=", Some(BinAst::Shr)),
            ("=", None),
        ] {
            if self.peek_punct(tok) {
                self.pos += 1;
                let rhs = self.parse_assign()?;
                let rhs = match op {
                    Some(op) => Expr::Bin(op, Box::new(lhs.clone()), Box::new(rhs)),
                    None => rhs,
                };
                return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let c = self.parse_logor()?;
        if self.eat_punct("?") {
            let a = self.parse_expr()?;
            self.expect_punct(":")?;
            let b = self.parse_ternary()?;
            return Ok(Expr::Ternary(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }

    fn parse_logor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_logand()?;
        while self.eat_punct("||") {
            let r = self.parse_logand()?;
            e = Expr::Bin(BinAst::LogOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_logand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_bitor()?;
        while self.eat_punct("&&") {
            let r = self.parse_bitor()?;
            e = Expr::Bin(BinAst::LogAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_bitor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_bitxor()?;
        while self.peek_punct("|") {
            self.pos += 1;
            let r = self.parse_bitxor()?;
            e = Expr::Bin(BinAst::BitOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_bitand()?;
        while self.peek_punct("^") {
            self.pos += 1;
            let r = self.parse_bitand()?;
            e = Expr::Bin(BinAst::BitXor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_bitand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_equality()?;
        while self.peek_punct("&") {
            self.pos += 1;
            let r = self.parse_equality()?;
            e = Expr::Bin(BinAst::BitAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_relational()?;
        loop {
            let op = if self.eat_punct("==") {
                BinAst::Eq
            } else if self.eat_punct("!=") {
                BinAst::Ne
            } else {
                return Ok(e);
            };
            let r = self.parse_relational()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_shift()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinAst::Le
            } else if self.eat_punct(">=") {
                BinAst::Ge
            } else if self.eat_punct("<") {
                BinAst::Lt
            } else if self.eat_punct(">") {
                BinAst::Gt
            } else {
                return Ok(e);
            };
            let r = self.parse_shift()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_additive()?;
        loop {
            let op = if self.eat_punct("<<") {
                BinAst::Shl
            } else if self.eat_punct(">>") {
                BinAst::Shr
            } else {
                return Ok(e);
            };
            let r = self.parse_additive()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinAst::Add
            } else if self.eat_punct("-") {
                BinAst::Sub
            } else {
                return Ok(e);
            };
            let r = self.parse_multiplicative()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinAst::Mul
            } else if self.eat_punct("/") {
                BinAst::Div
            } else if self.eat_punct("%") {
                BinAst::Rem
            } else {
                return Ok(e);
            };
            let r = self.parse_unary()?;
            e = Expr::Bin(op, Box::new(e), Box::new(r));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnAst::Neg, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnAst::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnAst::BitNot, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Un(UnAst::Deref, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::Un(UnAst::AddrOf, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("(") {
            // Cast or parenthesized expression.
            let save = self.pos;
            if let Some(_ty) = self.try_type() {
                if self.eat_punct(")") {
                    // Cast: types are all word-sized; casts are no-ops.
                    return self.parse_unary();
                }
            }
            self.pos = save;
            let e = self.parse_expr()?;
            self.expect_punct(")")?;
            return self.parse_postfix(e);
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_ident_exact("sizeof") {
            self.expect_punct("(")?;
            // sizeof(ident) or sizeof(type) — type sizes are 1 word.
            let e = match self.peek_ident() {
                Some(w) if TYPE_WORDS.contains(&w) => {
                    let _ = self.try_type();
                    Expr::Int(1)
                }
                _ => Expr::SizeOf(self.expect_ident()?),
            };
            self.expect_punct(")")?;
            return Ok(e);
        }
        if let Some(Token {
            kind: TokenKind::Int(v),
            ..
        }) = self.toks.get(self.pos)
        {
            let v = *v;
            self.pos += 1;
            return Ok(Expr::Int(v));
        }
        let name = self.expect_ident()?;
        if self.peek_punct("(") {
            self.pos += 1;
            let mut args = Vec::new();
            if !self.peek_punct(")") {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            return self.parse_postfix(Expr::Call(name, args));
        }
        self.parse_postfix(Expr::Ident(name))
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Result<Expr, ParseError> {
        loop {
            // Postfix ++/-- desugar to compound assignment (the expression
            // value is the *updated* value — a pre-increment approximation
            // adequate for statement position, where benchmarks use it).
            if self.eat_punct("++") {
                e = Expr::Assign(
                    Box::new(e.clone()),
                    Box::new(Expr::Bin(BinAst::Add, Box::new(e), Box::new(Expr::Int(1)))),
                );
                continue;
            }
            if self.eat_punct("--") {
                e = Expr::Assign(
                    Box::new(e.clone()),
                    Box::new(Expr::Bin(BinAst::Sub, Box::new(e), Box::new(Expr::Int(1)))),
                );
                continue;
            }
            if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
                continue;
            }
            if self.eat_punct("->") || self.eat_punct(".") {
                // Struct field access: modelled as index 0 of the pointed-to
                // region (mini-C flattens structs to single words).
                let _field = self.expect_ident()?;
                e = Expr::Un(UnAst::Deref, Box::new(e));
                continue;
            }
            return Ok(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn globals_with_arrays_and_inits() {
        let p = parse_src("int A[16]; uint8_t C[2] = {0, 0}; int size_A = 7;");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].size, 16);
        assert_eq!(p.globals[1].init, vec![0, 0]);
        assert_eq!(p.globals[2].init, vec![7]);
    }

    #[test]
    fn invalid_array_sizes_are_rejected() {
        // Used to wrap through `as u32` into a bogus (usually huge) size.
        for src in [
            "int A[-1];",
            "int A[0];",
            "int A[4294967296];",
            "int A[65536][65536];", // per-dim ok, product overflows u32
            "void f() { int a[-4]; }",
        ] {
            let toks = lex(src).unwrap();
            assert!(parse(&toks).is_err(), "accepted {src:?}");
        }
    }

    #[test]
    fn multi_dimensional_sizes_flatten() {
        let p = parse_src("int A[4][8];");
        assert_eq!(p.globals[0].size, 32);
    }

    #[test]
    fn comma_separated_globals() {
        let p = parse_src("int a, b, *c;");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[2].ty.ptr_depth, 1);
    }

    #[test]
    fn function_params_and_body() {
        let p = parse_src("void f(uint32_t idx, uint8_t *p) { *p = idx; }");
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 2);
        assert!(f.params[1].0.is_ptr());
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn precedence_mul_before_add() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        match &p.functions[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinAst::Add, _, r))) => {
                assert!(matches!(**r, Expr::Bin(BinAst::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse_src("int x; void f() { x += 2; }");
        match &p.functions[0].body[0] {
            Stmt::Expr(Expr::Assign(lhs, rhs)) => {
                assert_eq!(**lhs, Expr::Ident("x".into()));
                assert!(matches!(**rhs, Expr::Bin(BinAst::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_desugars_to_while() {
        let p = parse_src("void f() { for (int i = 0; i < 3; i += 1) { } }");
        match &p.functions[0].body[0] {
            Stmt::Block(stmts) => {
                assert!(matches!(stmts[0], Stmt::Decl(..)));
                assert!(matches!(stmts[1], Stmt::While(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrow_and_dot_become_deref() {
        let p = parse_src("void f(int *s) { return; } int g(int *s) { return s->hash; }");
        match &p.functions[1].body[0] {
            Stmt::Return(Some(Expr::Un(UnAst::Deref, _))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn casts_are_noops() {
        let p = parse_src("int f(int x) { return (int)(uint8_t)x; }");
        match &p.functions[0].body[0] {
            Stmt::Return(Some(Expr::Ident(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lfence_statement() {
        let p = parse_src("void f() { lfence(); }");
        assert_eq!(p.functions[0].body[0], Stmt::Fence);
    }

    #[test]
    fn error_has_line_number() {
        let toks = lex("int f() {\n  return 1 +;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn ternary_parsed() {
        let p = parse_src("int f(int x) { return x ? 1 : 2; }");
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::Return(Some(Expr::Ternary(..)))
        ));
    }

    #[test]
    fn void_param_list() {
        let p = parse_src("int f(void) { return 0; }");
        assert!(p.functions[0].params.is_empty());
    }
}
