//! Tokenizer for mini-C.

use std::fmt;

/// Token categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation / operator, e.g. `"+="`, `"<<"`, `"("`.
    Punct(&'static str),
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// An unrecognized character.
    UnexpectedChar {
        /// Offending character.
        ch: char,
        /// 1-based source line.
        line: usize,
    },
    /// An integer literal that does not fit in `i64` (or an empty hex
    /// literal like `0x`). Previously lexed as `0`, silently changing
    /// program semantics.
    IntOutOfRange {
        /// The literal's text as written.
        text: String,
        /// 1-based source line.
        line: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, line } => {
                write!(f, "unexpected character {ch:?} on line {line}")
            }
            LexError::IntOutOfRange { text, line } => {
                write!(f, "integer literal `{text}` out of range on line {line}")
            }
        }
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "&&", "||", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "->", "++", "--", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "[", "]", "{", "}", ";", ",", "?", ":", ".",
];

/// Tokenizes mini-C source. Line (`//`) and block (`/* */`) comments and
/// preprocessor lines (`#...`) are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] on the first unrecognized character.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
                continue;
            }
        }
        // Preprocessor lines: skip wholesale.
        if c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            out.push(Token {
                kind: TokenKind::Ident(word),
                line,
            });
            continue;
        }
        // Numbers (decimal / hex).
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let text: String = bytes[start + 2..i].iter().collect();
                let v = i64::from_str_radix(&text, 16).map_err(|_| LexError::IntOutOfRange {
                    text: format!("0x{text}"),
                    line,
                })?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: i64 = text
                    .parse()
                    .map_err(|_| LexError::IntOutOfRange { text, line })?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
            }
            // Skip integer suffixes (u, U, l, L combinations).
            while i < bytes.len() && matches!(bytes[i], 'u' | 'U' | 'l' | 'L') {
                i += 1;
            }
            continue;
        }
        // Character literals lex to their code point.
        if c == '\'' && i + 2 < bytes.len() && bytes[i + 2] == '\'' {
            out.push(Token {
                kind: TokenKind::Int(bytes[i + 1] as i64),
                line,
            });
            i += 3;
            continue;
        }
        // Punctuation, longest match first.
        let rest: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            out.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(LexError::UnexpectedChar { ch: c, line });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            kinds("a <<= b << c <= d < e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("<<"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
                TokenKind::Punct("<"),
                TokenKind::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(
            kinds("0xff 10UL"),
            vec![TokenKind::Int(255), TokenKind::Int(10)]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let src = "#include <stdint.h>\n// line\nint /* block\nspanning */ x;";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(";"),
            ]
        );
    }

    #[test]
    fn char_literal() {
        assert_eq!(kinds("'A'"), vec![TokenKind::Int(65)]);
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unexpected_character_errors() {
        let e = lex("int $x;").unwrap_err();
        assert_eq!(e, LexError::UnexpectedChar { ch: '$', line: 1 });
    }

    #[test]
    fn out_of_range_literal_errors() {
        // One past i64::MAX: used to silently lex as 0.
        let e = lex("int x = 9223372036854775808;").unwrap_err();
        assert!(matches!(e, LexError::IntOutOfRange { line: 1, .. }));
        let e = lex("int y = 0xFFFFFFFFFFFFFFFFFF;").unwrap_err();
        assert!(matches!(e, LexError::IntOutOfRange { line: 1, .. }));
    }

    #[test]
    fn in_range_literals_still_lex() {
        assert_eq!(kinds("9223372036854775807"), vec![TokenKind::Int(i64::MAX)]);
        assert_eq!(kinds("0x7fffffffffffffff"), vec![TokenKind::Int(i64::MAX)]);
    }
}
