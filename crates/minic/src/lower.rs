//! Lowering from the mini-C AST to [`lcm_ir`] at `clang -O0` fidelity.
//!
//! Every non-`register` variable lives in an `alloca`; every use is a
//! `load` and every assignment a `store`. Array indexing lowers to
//! [`lcm_ir::Inst::Gep`]; pointer dereference lowers to a load whose
//! address operand is the loaded pointer (a plain `addr` dependency).

use std::collections::HashMap;

use lcm_ir::{BinOp, BlockId, Function, Global, GlobalId, Inst, Module, Terminator, Ty, Value};

use crate::ast::*;

/// Lowers a program to an IR module.
///
/// # Errors
///
/// Returns a message describing the first lowering problem (e.g. an
/// undeclared identifier or a non-pointer indexed as an array).
pub fn lower(prog: &Program) -> Result<Module, String> {
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, GlobalInfo)> = HashMap::new();
    for g in &prog.globals {
        let secret =
            g.name.starts_with("sec") || g.name.contains("secret") || g.name.contains("key");
        let mut global = Global::array(&g.name, g.size.max(1));
        global.is_ptr = g.ty.is_ptr();
        global.secret = secret;
        global.init = g
            .init
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, v))
            .collect();
        let gid = module.add_global(global);
        let depth = g.ty.ptr_depth + usize::from(g.size > 1);
        globals.insert(
            g.name.clone(),
            (
                gid,
                GlobalInfo {
                    depth,
                    is_array: g.size > 1,
                    size: g.size,
                },
            ),
        );
    }
    // Function signatures (return pointer depth), for call result typing.
    let sigs: HashMap<String, usize> = prog
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.ret.ptr_depth))
        .collect();
    for fd in &prog.functions {
        let f = FuncLowerer::new(fd, &globals, &sigs).lower()?;
        module.add_function(f);
    }
    Ok(module)
}

#[derive(Debug, Clone, Copy)]
struct GlobalInfo {
    /// Pointer depth of the value named by the identifier (arrays decay).
    depth: usize,
    is_array: bool,
    size: u32,
}

/// Where a local variable's value lives.
#[derive(Debug, Clone)]
enum Slot {
    /// A stack slot; the identifier's value has the given pointer depth.
    Stack {
        addr: Value,
        depth: usize,
        is_array: bool,
        size: u32,
    },
    /// A `register` variable: tracked as a plain value (no memory).
    Reg { value: Value, depth: usize },
}

struct FuncLowerer<'a> {
    fd: &'a FuncDef,
    globals: &'a HashMap<String, (GlobalId, GlobalInfo)>,
    sigs: &'a HashMap<String, usize>,
    f: Function,
    bb: BlockId,
    scopes: Vec<HashMap<String, Slot>>,
    /// Innermost-first stack of (loop header, loop exit) for break/continue.
    loop_stack: Vec<(BlockId, BlockId)>,
}

fn ty_of(depth: usize) -> Ty {
    if depth > 0 {
        Ty::Ptr
    } else {
        Ty::Int
    }
}

impl<'a> FuncLowerer<'a> {
    fn new(
        fd: &'a FuncDef,
        globals: &'a HashMap<String, (GlobalId, GlobalInfo)>,
        sigs: &'a HashMap<String, usize>,
    ) -> Self {
        let params: Vec<(&str, Ty)> = fd
            .params
            .iter()
            .map(|(t, n)| (n.as_str(), ty_of(t.ptr_depth)))
            .collect();
        let f = Function::new(&fd.name, &params);
        let bb = f.entry();
        FuncLowerer {
            fd,
            globals,
            sigs,
            f,
            bb,
            scopes: vec![HashMap::new()],
            loop_stack: Vec::new(),
        }
    }

    fn lower(mut self) -> Result<Function, String> {
        // clang -O0: spill each parameter to a stack slot (unless
        // `register`-qualified).
        for (i, (ty, name)) in self.fd.params.iter().enumerate() {
            let pv = self.f.param(i);
            if ty.is_register {
                self.declare(
                    name,
                    Slot::Reg {
                        value: pv,
                        depth: ty.ptr_depth,
                    },
                );
            } else {
                let slot = self.f.push(
                    self.bb,
                    Inst::Alloca {
                        name: format!("{name}.addr"),
                        size: 1,
                    },
                );
                self.f.push(
                    self.bb,
                    Inst::Store {
                        addr: slot,
                        value: pv,
                    },
                );
                self.declare(
                    name,
                    Slot::Stack {
                        addr: slot,
                        depth: ty.ptr_depth,
                        is_array: false,
                        size: 1,
                    },
                );
            }
        }
        let body = self.fd.body.clone();
        self.lower_stmts(&body)?;
        // Implicit return at end of function.
        self.f.set_term(self.bb, Terminator::Ret(None));
        Ok(self.f)
    }

    fn declare(&mut self, name: &str, slot: Slot) {
        match self.scopes.last_mut() {
            Some(scope) => {
                scope.insert(name.to_string(), slot);
            }
            // The scope stack starts non-empty and push/pop is balanced,
            // but recover rather than panic if that invariant breaks.
            None => self.scopes.push(HashMap::from([(name.to_string(), slot)])),
        }
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(s.clone());
            }
        }
        None
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                self.lower_stmts(stmts)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(ty, name, size, init) => {
                if ty.is_register {
                    let init_v = match init {
                        Some(e) => self.rvalue(e)?.0,
                        None => self.f.iconst(0),
                    };
                    self.declare(
                        name,
                        Slot::Reg {
                            value: init_v,
                            depth: ty.ptr_depth,
                        },
                    );
                    return Ok(());
                }
                let n = size.unwrap_or(1).max(1);
                let addr = self.f.push(
                    self.bb,
                    Inst::Alloca {
                        name: name.clone(),
                        size: n,
                    },
                );
                let depth = ty.ptr_depth + usize::from(size.is_some());
                self.declare(
                    name,
                    Slot::Stack {
                        addr,
                        depth,
                        is_array: size.is_some(),
                        size: n,
                    },
                );
                if let Some(e) = init {
                    let (v, _) = self.rvalue(e)?;
                    self.f.push(self.bb, Inst::Store { addr, value: v });
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Fence => {
                self.f.push(self.bb, Inst::Fence);
                Ok(())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.rvalue(e)?.0),
                    None => None,
                };
                self.f.set_term(self.bb, Terminator::Ret(v));
                // Continue lowering into an unreachable block.
                self.bb = self.f.add_block("dead");
                Ok(())
            }
            Stmt::If(cond, then_s, else_s) => {
                let (c, _) = self.rvalue(cond)?;
                let then_b = self.f.add_block("if.then");
                let else_b = self.f.add_block("if.else");
                let join = self.f.add_block("if.join");
                self.f.set_term(
                    self.bb,
                    Terminator::CondBr {
                        cond: c,
                        then_bb: then_b,
                        else_bb: else_b,
                    },
                );
                self.bb = then_b;
                self.scopes.push(HashMap::new());
                self.lower_stmts(then_s)?;
                self.scopes.pop();
                self.f.set_term(self.bb, Terminator::Br(join));
                self.bb = else_b;
                self.scopes.push(HashMap::new());
                self.lower_stmts(else_s)?;
                self.scopes.pop();
                self.f.set_term(self.bb, Terminator::Br(join));
                self.bb = join;
                Ok(())
            }
            Stmt::While(cond, body) => {
                let header = self.f.add_block("while.header");
                let body_b = self.f.add_block("while.body");
                let exit = self.f.add_block("while.exit");
                self.f.set_term(self.bb, Terminator::Br(header));
                self.bb = header;
                let (c, _) = self.rvalue(cond)?;
                self.f.set_term(
                    self.bb,
                    Terminator::CondBr {
                        cond: c,
                        then_bb: body_b,
                        else_bb: exit,
                    },
                );
                self.bb = body_b;
                self.scopes.push(HashMap::new());
                self.loop_stack.push((header, exit));
                self.lower_stmts(body)?;
                self.loop_stack.pop();
                self.scopes.pop();
                self.f.set_term(self.bb, Terminator::Br(header));
                self.bb = exit;
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                // body executes at least once; the latch re-checks cond.
                let body_b = self.f.add_block("do.body");
                let latch = self.f.add_block("do.latch");
                let exit = self.f.add_block("do.exit");
                self.f.set_term(self.bb, Terminator::Br(body_b));
                self.bb = body_b;
                self.scopes.push(HashMap::new());
                self.loop_stack.push((latch, exit));
                self.lower_stmts(body)?;
                self.loop_stack.pop();
                self.scopes.pop();
                self.f.set_term(self.bb, Terminator::Br(latch));
                self.bb = latch;
                let (c, _) = self.rvalue(cond)?;
                self.f.set_term(
                    self.bb,
                    Terminator::CondBr {
                        cond: c,
                        then_bb: body_b,
                        else_bb: exit,
                    },
                );
                self.bb = exit;
                Ok(())
            }
            Stmt::Break => {
                let &(_, exit) = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| "break outside of a loop".to_string())?;
                self.f.set_term(self.bb, Terminator::Br(exit));
                self.bb = self.f.add_block("dead");
                Ok(())
            }
            Stmt::Continue => {
                let &(header, _) = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| "continue outside of a loop".to_string())?;
                self.f.set_term(self.bb, Terminator::Br(header));
                self.bb = self.f.add_block("dead");
                Ok(())
            }
        }
    }

    /// Lowers an expression to an rvalue: `(value, pointer depth)`.
    fn rvalue(&mut self, e: &Expr) -> Result<(Value, usize), String> {
        match e {
            Expr::Int(v) => Ok((self.f.iconst(*v), 0)),
            Expr::SizeOf(name) => {
                let n = match self.lookup(name) {
                    Some(Slot::Stack { size, .. }) => i64::from(size),
                    Some(Slot::Reg { .. }) => 1,
                    None => match self.globals.get(name) {
                        Some((_, info)) => i64::from(info.size),
                        None => return Err(format!("sizeof of unknown `{name}`")),
                    },
                };
                Ok((self.f.iconst(n), 0))
            }
            Expr::Ident(name) => {
                match self.lookup(name) {
                    Some(Slot::Reg { value, depth }) => Ok((value, depth)),
                    Some(Slot::Stack {
                        addr,
                        depth,
                        is_array,
                        ..
                    }) => {
                        if is_array {
                            // Arrays decay to their base address (no load).
                            Ok((addr, depth))
                        } else {
                            let v = self.f.push(
                                self.bb,
                                Inst::Load {
                                    addr,
                                    ty: ty_of(depth),
                                },
                            );
                            Ok((v, depth))
                        }
                    }
                    None => match self.globals.get(name).copied() {
                        Some((gid, info)) => {
                            let base = self.f.global_addr(gid);
                            if info.is_array {
                                Ok((base, info.depth))
                            } else {
                                let v = self.f.push(
                                    self.bb,
                                    Inst::Load {
                                        addr: base,
                                        ty: ty_of(info.depth),
                                    },
                                );
                                Ok((v, info.depth))
                            }
                        }
                        None => Err(format!("undeclared identifier `{name}`")),
                    },
                }
            }
            Expr::Un(UnAst::Neg, inner) => {
                let (v, _) = self.rvalue(inner)?;
                let zero = self.f.iconst(0);
                Ok((self.f.bin(BinOp::Sub, zero, v), 0))
            }
            Expr::Un(UnAst::Not, inner) => {
                let (v, _) = self.rvalue(inner)?;
                let zero = self.f.iconst(0);
                Ok((self.f.bin(BinOp::Eq, v, zero), 0))
            }
            Expr::Un(UnAst::BitNot, inner) => {
                let (v, _) = self.rvalue(inner)?;
                let m1 = self.f.iconst(-1);
                Ok((self.f.bin(BinOp::Xor, v, m1), 0))
            }
            Expr::Un(UnAst::Deref, inner) => {
                let (p, depth) = self.rvalue(inner)?;
                if depth == 0 {
                    return Err("dereference of non-pointer".to_string());
                }
                let v = self.f.push(
                    self.bb,
                    Inst::Load {
                        addr: p,
                        ty: ty_of(depth - 1),
                    },
                );
                Ok((v, depth - 1))
            }
            Expr::Un(UnAst::AddrOf, inner) => self.lvalue(inner),
            Expr::Index(base, idx) => {
                let (addr, depth) = self.index_addr(base, idx)?;
                let v = self.f.push(
                    self.bb,
                    Inst::Load {
                        addr,
                        ty: ty_of(depth),
                    },
                );
                Ok((v, depth))
            }
            Expr::Call(name, args) => {
                if name == "lfence" || name == "__lfence" {
                    self.f.push(self.bb, Inst::Fence);
                    return Ok((self.f.iconst(0), 0));
                }
                let mut avs = Vec::new();
                for a in args {
                    avs.push(self.rvalue(a)?.0);
                }
                let ret_depth = self.sigs.get(name).copied().unwrap_or(0);
                let v = self.f.push(
                    self.bb,
                    Inst::Call {
                        callee: name.clone(),
                        args: avs,
                        ty: ty_of(ret_depth),
                    },
                );
                Ok((v, ret_depth))
            }
            Expr::Bin(BinAst::LogAnd, a, b) => self.short_circuit(a, b, true),
            Expr::Bin(BinAst::LogOr, a, b) => self.short_circuit(a, b, false),
            Expr::Bin(op, a, b) => {
                let (va, da) = self.rvalue(a)?;
                let (vb, db) = self.rvalue(b)?;
                // Pointer arithmetic `p + i` lowers to gep (non-gep addr
                // dependency semantics preserved via base operand).
                if matches!(op, BinAst::Add) && da > 0 && db == 0 {
                    return Ok((self.f.gep(va, vb), da));
                }
                if matches!(op, BinAst::Add) && db > 0 && da == 0 {
                    return Ok((self.f.gep(vb, va), db));
                }
                let irop =
                    match op {
                        BinAst::Add => BinOp::Add,
                        BinAst::Sub => BinOp::Sub,
                        BinAst::Mul => BinOp::Mul,
                        BinAst::Div => BinOp::Div,
                        BinAst::Rem => BinOp::Rem,
                        BinAst::BitAnd => BinOp::And,
                        BinAst::BitOr => BinOp::Or,
                        BinAst::BitXor => BinOp::Xor,
                        BinAst::Shl => BinOp::Shl,
                        BinAst::Shr => BinOp::Shr,
                        BinAst::Lt => BinOp::Lt,
                        BinAst::Le => BinOp::Le,
                        BinAst::Gt => BinOp::Gt,
                        BinAst::Ge => BinOp::Ge,
                        BinAst::Eq => BinOp::Eq,
                        BinAst::Ne => BinOp::Ne,
                        BinAst::LogAnd | BinAst::LogOr => return Err(
                            "internal error: short-circuit operator reached arithmetic lowering"
                                .to_string(),
                        ),
                    };
                Ok((self.f.bin(irop, va, vb), 0))
            }
            Expr::Ternary(c, a, b) => {
                let slot = self.f.push(
                    self.bb,
                    Inst::Alloca {
                        name: "ternary".into(),
                        size: 1,
                    },
                );
                let (cv, _) = self.rvalue(c)?;
                let then_b = self.f.add_block("tern.then");
                let else_b = self.f.add_block("tern.else");
                let join = self.f.add_block("tern.join");
                self.f.set_term(
                    self.bb,
                    Terminator::CondBr {
                        cond: cv,
                        then_bb: then_b,
                        else_bb: else_b,
                    },
                );
                self.bb = then_b;
                let (va, da) = self.rvalue(a)?;
                self.f.push(
                    self.bb,
                    Inst::Store {
                        addr: slot,
                        value: va,
                    },
                );
                self.f.set_term(self.bb, Terminator::Br(join));
                self.bb = else_b;
                let (vb, _) = self.rvalue(b)?;
                self.f.push(
                    self.bb,
                    Inst::Store {
                        addr: slot,
                        value: vb,
                    },
                );
                self.f.set_term(self.bb, Terminator::Br(join));
                self.bb = join;
                let v = self.f.push(
                    self.bb,
                    Inst::Load {
                        addr: slot,
                        ty: ty_of(da),
                    },
                );
                Ok((v, da))
            }
            Expr::Assign(lhs, rhs) => {
                let (v, dv) = self.rvalue(rhs)?;
                match &**lhs {
                    Expr::Ident(name) if matches!(self.lookup(name), Some(Slot::Reg { .. })) => {
                        // `register` variable: update the tracked value.
                        let depth = match self.lookup(name) {
                            Some(Slot::Reg { depth, .. }) => depth,
                            _ => {
                                return Err(format!(
                                    "internal error: `register` slot for `{name}` vanished"
                                ))
                            }
                        };
                        // Rebind in the innermost scope that declares it.
                        for scope in self.scopes.iter_mut().rev() {
                            if scope.contains_key(name) {
                                scope.insert(name.clone(), Slot::Reg { value: v, depth });
                                break;
                            }
                        }
                        Ok((v, dv))
                    }
                    _ => {
                        let (addr, _) = self.lvalue(lhs)?;
                        self.f.push(self.bb, Inst::Store { addr, value: v });
                        Ok((v, dv))
                    }
                }
            }
        }
    }

    /// Computes the address of `base[idx]` and the element pointer depth.
    fn index_addr(&mut self, base: &Expr, idx: &Expr) -> Result<(Value, usize), String> {
        let (b, depth) = self.rvalue(base)?;
        if depth == 0 {
            return Err("indexing a non-pointer".to_string());
        }
        let (i, _) = self.rvalue(idx)?;
        Ok((self.f.gep(b, i), depth - 1))
    }

    /// Lowers an lvalue to `(address, pointee depth)`.
    fn lvalue(&mut self, e: &Expr) -> Result<(Value, usize), String> {
        match e {
            Expr::Ident(name) => match self.lookup(name) {
                Some(Slot::Stack {
                    addr,
                    depth,
                    is_array,
                    ..
                }) => {
                    if is_array {
                        Ok((addr, depth))
                    } else {
                        Ok((addr, depth + 1))
                    }
                }
                Some(Slot::Reg { .. }) => Err(format!("cannot take address of register `{name}`")),
                None => match self.globals.get(name).copied() {
                    Some((gid, info)) => {
                        let base = self.f.global_addr(gid);
                        if info.is_array {
                            Ok((base, info.depth))
                        } else {
                            Ok((base, info.depth + 1))
                        }
                    }
                    None => Err(format!("undeclared identifier `{name}`")),
                },
            },
            Expr::Index(base, idx) => {
                let (addr, d) = self.index_addr(base, idx)?;
                Ok((addr, d + 1))
            }
            Expr::Un(UnAst::Deref, inner) => {
                let (p, depth) = self.rvalue(inner)?;
                if depth == 0 {
                    return Err("dereference of non-pointer".to_string());
                }
                Ok((p, depth))
            }
            other => Err(format!("expression is not an lvalue: {other:?}")),
        }
    }

    /// Short-circuit `&&` (and=true) / `||` (and=false) via control flow
    /// and a result slot, matching `clang -O0` structure.
    fn short_circuit(
        &mut self,
        a: &Expr,
        b: &Expr,
        is_and: bool,
    ) -> Result<(Value, usize), String> {
        let slot = self.f.push(
            self.bb,
            Inst::Alloca {
                name: if is_and { "and" } else { "or" }.into(),
                size: 1,
            },
        );
        let init = self.f.iconst(i64::from(!is_and));
        self.f.push(
            self.bb,
            Inst::Store {
                addr: slot,
                value: init,
            },
        );
        let (va, _) = self.rvalue(a)?;
        let eval_b = self.f.add_block("sc.rhs");
        let join = self.f.add_block("sc.join");
        if is_and {
            self.f.set_term(
                self.bb,
                Terminator::CondBr {
                    cond: va,
                    then_bb: eval_b,
                    else_bb: join,
                },
            );
        } else {
            self.f.set_term(
                self.bb,
                Terminator::CondBr {
                    cond: va,
                    then_bb: join,
                    else_bb: eval_b,
                },
            );
        }
        self.bb = eval_b;
        let (vb, _) = self.rvalue(b)?;
        let zero = self.f.iconst(0);
        let norm = self.f.bin(BinOp::Ne, vb, zero);
        self.f.push(
            self.bb,
            Inst::Store {
                addr: slot,
                value: norm,
            },
        );
        self.f.set_term(self.bb, Terminator::Br(join));
        self.bb = join;
        let v = self.f.push(
            self.bb,
            Inst::Load {
                addr: slot,
                ty: Ty::Int,
            },
        );
        Ok((v, 0))
    }
}
