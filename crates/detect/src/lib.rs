//! Clou-style static leakage detection (§5 of the paper).
//!
//! The [`Detector`] runs a *leakage detection engine* (§5.3) over the
//! S-AEG of every public function of a module:
//!
//! * [`EngineKind::Pht`] — control-flow speculation (Spectre v1 / v1.1):
//!   a mispredicted conditional branch opens a window in which transient
//!   transmitters execute;
//! * [`EngineKind::Stl`] — store-to-load forwarding (Spectre v4): a load
//!   bypasses an older, unresolved same-address store and forwards stale
//!   data into a transmitter chain.
//!
//! Both engines search for rf-non-interference violations (§4.1) realised
//! as transmitter patterns of Table 1, generalised with `(data.rf)*.addr`
//! chains (§5.3), filtered by `addr_gep` (PHT only) and attacker taint,
//! and checked for architectural path feasibility with the SAT solver.
//! [`repair`] inserts a minimal set of `lfence`s and the tests confirm
//! re-analysis comes back clean.
//!
//! # Examples
//!
//! ```
//! use lcm_detect::{repair, Detector, DetectorConfig, EngineKind};
//! use lcm_core::taxonomy::TransmitterClass;
//!
//! let module = lcm_minic::compile(r#"
//!     int A[16]; int B[4096]; int size; int tmp;
//!     void victim(int y) {
//!         if (y < size)
//!             tmp &= B[A[y] * 512];
//!     }
//! "#).unwrap();
//! let det = Detector::new(DetectorConfig::default());
//! let report = det.analyze_module(&module, EngineKind::Pht);
//! assert!(report.count(TransmitterClass::UniversalData) >= 1);
//!
//! let (fixed, fences) = repair(&module, &det, EngineKind::Pht);
//! assert_eq!(fences, 1);
//! assert!(det.analyze_module(&fixed, EngineKind::Pht).is_clean());
//! ```

mod engine;
mod repair;
mod report;
mod witness;

pub use engine::{secret_relevant, Detector, DetectorConfig, EngineKind};
pub use repair::{repair, repair_all, repair_function, repair_once};
pub use report::{
    CacheStatus, Finding, FunctionReport, FunctionStatus, ModuleReport, PhaseTimings,
};
pub use witness::{describe, witness_dot};
