//! The leakage detection engines (§5.3).
//!
//! Functions are independent analysis units (each gets its own S-AEG,
//! CNF, and solver), so [`Detector::analyze_module`] fans them out over
//! [`lcm_core::par`] worker threads when [`DetectorConfig::jobs`]
//! permits; results come back in module order, byte-identical to a
//! serial run. Worker threads left over after the per-function split
//! are pushed *into* the functions: each engine's candidate loop is a
//! sequence of independent work units ((branch, direction) pairs for
//! PHT, loads for STL/PSF), and with more than one intra-function
//! worker each unit runs on a per-worker **clone** of the function's
//! [`Feasibility`] stack (solver, memo, and all). Every unit starts
//! from an empty assumption stack and checks are answered semantically
//! (sat/unsat), so per-unit findings are a pure function of the unit —
//! merging them in unit order reproduces the serial output byte for
//! byte at any job count. Only the *counters* (memo hits, solver
//! reuses) are scheduling-dependent in the intra-parallel mode, which
//! is why the query-budget pins run at `jobs = 1`.
//!
//! Within one unit the engines drive the [`Feasibility`] solver through
//! its assumption stack (`mark`/`push`/`truncate`) instead of cloning
//! request vectors per candidate chain; the solver underneath is
//! persistent and incremental across the whole function unless
//! [`DetectorConfig::disable_incremental`] opts into the
//! fresh-solver-per-query oracle mode.

use std::sync::Arc;
use std::time::Instant;

use lcm_aeg::addr::{alias, AliasResult};
use lcm_aeg::deps::{ctrl_edges, generalized_addr, Gaddr};
use lcm_aeg::taint::attacker_controlled;
use lcm_aeg::{EventId, EventKind, Feasibility, Saeg};
use lcm_core::fault::{site, FaultPlan};
use lcm_core::govern::{AnalysisError, Budgets, ResourceGovernor};
use lcm_core::speculation::{SpeculationConfig, SpeculationPrimitive};
use lcm_core::taxonomy::TransmitterClass;
use lcm_ir::{Inst, Module};
use lcm_relalg::Relation;

use crate::report::{
    CacheStatus, Finding, FunctionReport, FunctionStatus, ModuleReport, PhaseTimings,
};

/// Which speculation primitive an engine considers (§5.3): Clou-pht and
/// Clou-stl "differ only with regard to the speculation primitives they
/// consider".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Control-flow speculation: Spectre v1 / v1.1.
    Pht,
    /// Store-to-load forwarding: Spectre v4.
    Stl,
    /// **Extension** (beyond Clou's two engines): predictive store
    /// forwarding / alias prediction — a load may forward from an older
    /// store to a *mismatching* address (Spectre-PSF, §3.3 / Fig. 4b).
    Psf,
}

impl EngineKind {
    /// Stable lower-case name (`pht` / `stl` / `psf`) shared by the
    /// wire protocol, trace span args, and metric names.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Pht => "pht",
            EngineKind::Stl => "stl",
            EngineKind::Psf => "psf",
        }
    }
}

/// Folds one function's [`lcm_aeg::FeasStats`] into the process-wide
/// metrics registry — the cumulative view the daemon's `metrics`
/// request and the bench summary expose. One batch of counter adds per
/// analyzed function, nothing on the query hot path.
fn absorb_feas_stats(st: &lcm_aeg::FeasStats) {
    use lcm_obs::metrics::{global, names, Counter};
    use std::sync::OnceLock;
    static HANDLES: OnceLock<[Counter; 6]> = OnceLock::new();
    let [queries, memo, avoided, prefilter, reuses, retained] = HANDLES.get_or_init(|| {
        let g = global();
        [
            g.counter(
                names::SAT_QUERIES,
                "Feasibility queries that reached the memo/solver layer",
            ),
            g.counter(
                names::SAT_MEMO_HITS,
                "Feasibility queries answered from the assumption-trie memo",
            ),
            g.counter(
                names::SAT_QUERIES_AVOIDED,
                "Feasibility queries answered by the reachability pre-screen",
            ),
            g.counter(
                names::SAT_PREFILTER_HITS,
                "Engine-level candidate checks skipped by hoisted pre-screens",
            ),
            g.counter(
                names::SOLVER_REUSES,
                "Solver calls served by an already-warm persistent solver",
            ),
            g.counter(
                names::SAT_CLAUSES_RETAINED,
                "Learnt clauses retained across solver calls",
            ),
        ]
    });
    queries.add(st.queries);
    memo.add(st.memo_hits);
    avoided.add(st.queries_avoided);
    prefilter.add(st.prefilter_hits);
    reuses.add(st.solver_reuses);
    retained.add(st.clauses_retained);
}

/// Counter of intra-function work units dispatched to the parallel
/// splitter (one per (branch, direction) pair or per load). Zero in
/// serial runs — the serial path never touches the splitter.
fn work_units() -> &'static lcm_obs::metrics::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<lcm_obs::metrics::Counter> = OnceLock::new();
    C.get_or_init(|| {
        lcm_obs::metrics::global().counter(
            lcm_obs::metrics::names::WORK_UNITS,
            "Intra-function work units dispatched to parallel workers",
        )
    })
}

/// `after - before`, field-wise: the stats one worker accumulated on its
/// cloned [`Feasibility`] during a work unit (the clone inherits the
/// template's construction-time counters, which must not be re-counted).
fn stats_delta(after: lcm_aeg::FeasStats, before: lcm_aeg::FeasStats) -> lcm_aeg::FeasStats {
    lcm_aeg::FeasStats {
        queries: after.queries.saturating_sub(before.queries),
        memo_hits: after.memo_hits.saturating_sub(before.memo_hits),
        queries_avoided: after.queries_avoided.saturating_sub(before.queries_avoided),
        prefilter_hits: after.prefilter_hits.saturating_sub(before.prefilter_hits),
        encode: after.encode.saturating_sub(before.encode),
        solve: after.solve.saturating_sub(before.solve),
        solver_reuses: after.solver_reuses.saturating_sub(before.solver_reuses),
        clauses_retained: after
            .clauses_retained
            .saturating_sub(before.clauses_retained),
    }
}

/// Field-wise sum of two stats records.
fn stats_add(a: lcm_aeg::FeasStats, b: lcm_aeg::FeasStats) -> lcm_aeg::FeasStats {
    lcm_aeg::FeasStats {
        queries: a.queries + b.queries,
        memo_hits: a.memo_hits + b.memo_hits,
        queries_avoided: a.queries_avoided + b.queries_avoided,
        prefilter_hits: a.prefilter_hits + b.prefilter_hits,
        encode: a.encode + b.encode,
        solve: a.solve + b.solve,
        solver_reuses: a.solver_reuses + b.solver_reuses,
        clauses_retained: a.clauses_retained + b.clauses_retained,
    }
}

/// Concatenates per-unit findings in unit order (= serial engine order)
/// and sums the per-unit stats deltas.
fn merge_units(
    results: Vec<(Vec<Finding>, lcm_aeg::FeasStats)>,
) -> (Vec<Finding>, lcm_aeg::FeasStats) {
    let mut out = Vec::new();
    let mut st = lcm_aeg::FeasStats::default();
    for (findings, delta) in results {
        out.extend(findings);
        st = stats_add(st, delta);
    }
    (out, st)
}

/// Lazily memoized per-event steerability (the §5.3 taint filter):
/// [`access_steerable`] is a pure operand-graph walk per access event,
/// but the classify helpers ask it once per feasible chain — hundreds of
/// times per event on branch-dense functions. One byte per event:
/// 0 unknown, 1 not steerable, 2 steerable.
struct SteerCache(Vec<u8>);

impl SteerCache {
    fn new(events: usize) -> SteerCache {
        SteerCache(vec![0; events])
    }

    fn steerable(&mut self, saeg: &Saeg, access: EventId) -> bool {
        match self.0[access.0] {
            0 => {
                let v = access_steerable(saeg, access);
                self.0[access.0] = 1 + u8::from(v);
                v
            }
            v => v == 2,
        }
    }
}

/// Taint filter (§5.3): can the attacker steer the access's address
/// toward arbitrary memory? Pure in `(saeg, access)` — memoized per
/// function by [`SteerCache`].
fn access_steerable(saeg: &Saeg, access: EventId) -> bool {
    let e = &saeg.events[access.0];
    match saeg.acfg.inst(e.inst) {
        Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
            attacker_controlled(&saeg.acfg, *addr)
        }
        Inst::Havoc { .. } => true,
        _ => false,
    }
}

/// Detector configuration (Fig. 6's "configuration parameters").
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// ROB / LSQ / speculation-depth capacities. Paper default: 250/50.
    pub spec: SpeculationConfig,
    /// Sliding-window size `W_size` (§6.2.1): chain members must lie
    /// within this many instructions of the transmitter.
    pub window: usize,
    /// Report only this transmitter class (the paper runs Clou once per
    /// class of interest); `None` reports every class.
    pub target_class: Option<TransmitterClass>,
    /// PHT benign-leak filter: the first `addr` dependency of a universal
    /// pattern must be `addr_gep` (§5.3). Never applied to STL.
    pub gep_filter: bool,
    /// §6.2.1: ignore universal patterns whose access instruction is
    /// non-transient when searching UDTs/UCTs — classify them as DTs/CTs.
    pub universal_needs_transient_access: bool,
    /// **Extension** (§7: "adding support for secrecy labels to Clou can
    /// help filter benign DTs/CTs"): keep only findings whose access may
    /// read memory marked secret (globals named `sec*` / `*secret*` /
    /// `*key*` in mini-C, or any unresolvable pointer).
    pub secret_filter: bool,
    /// **Extension** (the "new attack variant" of §6.1 / speculative
    /// interference): also report transient instructions that warm a cache
    /// line for a same-address committed load (an rf-NI violation whose
    /// receiver is architectural).
    pub detect_interference: bool,
    /// Worker threads: `0` uses all available cores, `1` is exact
    /// serial execution. [`Detector::analyze_module`] splits the pool
    /// two-level: first across functions, then any left-over workers go
    /// *into* each function's engine loops (so a one-big-function
    /// module still uses every core). Findings are identical at every
    /// value; only scheduling-dependent counters (memo hits, solver
    /// reuses) vary above `1`.
    pub jobs: usize,
    /// Force-disables persistent incremental SAT: every solver-bound
    /// feasibility query runs on a fresh clone of the pristine encoded
    /// solver, so no learnt clause or heuristic state survives between
    /// queries. Findings are identical either way (satisfiability is
    /// semantic) — this is the fresh-solver oracle the differential
    /// test suite compares against. Also reachable via the
    /// `LCM_DISABLE_INCREMENTAL` environment variable.
    pub disable_incremental: bool,
    /// Force-disables the query-avoidance layer (the block-reachability
    /// pre-screen in [`Feasibility`] and the engines' duplicate-block
    /// fast paths), sending every feasibility question through the memo
    /// and solver. Findings are identical either way — this exists for
    /// the differential test suite and for debugging.
    pub disable_prefilter: bool,
    /// Per-function resource budgets (wall-clock deadline, solver
    /// conflicts, S-AEG size). The default is unlimited; a function
    /// exceeding a budget is reported `Degraded` instead of blocking
    /// the module (Clou's §6 per-function-timeout discipline).
    pub budgets: Budgets,
    /// Armed fault-injection sites (tests only). Merged with the
    /// `LCM_FAULT` environment variable at analysis time.
    pub faults: FaultPlan,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            spec: SpeculationConfig::default(),
            window: 250,
            target_class: None,
            gep_filter: true,
            universal_needs_transient_access: true,
            secret_filter: false,
            detect_interference: false,
            jobs: 0,
            disable_incremental: false,
            disable_prefilter: false,
            budgets: Budgets::default(),
            faults: FaultPlan::default(),
        }
    }
}

/// Predecessor lists of the dependency relations, hoisted out of the
/// engines' nested loops: [`Relation::predecessors`] is an O(n) column
/// scan, far too slow to re-run once per (transmitter, access) pair.
/// Iteration order matches `predecessors` exactly (ascending).
struct DepPreds {
    /// `gaddr.plain` predecessors per event.
    gaddr: Vec<Vec<EventId>>,
    /// `gaddr.gep` predecessors per event.
    gep: Vec<Vec<EventId>>,
    /// `ctrl` predecessors per event.
    ctrl: Vec<Vec<EventId>>,
}

impl DepPreds {
    fn build(n: usize, gaddr: &Gaddr, ctrl: &Relation) -> DepPreds {
        let lists = |r: &Relation| -> Vec<Vec<EventId>> {
            let t = r.transpose();
            (0..n)
                .map(|e| t.successors(e).map(EventId).collect())
                .collect()
        };
        DepPreds {
            gaddr: lists(&gaddr.plain),
            gep: lists(&gaddr.gep),
            ctrl: lists(ctrl),
        }
    }
}

/// The Clou-style detector: builds S-AEGs and runs a leakage detection
/// engine over each public function.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// A detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Detector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Analyzes every public function of the module with one engine,
    /// fanning out over [`DetectorConfig::jobs`] worker threads. Reports
    /// come back in module order regardless of the thread count.
    ///
    /// The report is *partial on failure*: a function that exceeds a
    /// [`DetectorConfig::budgets`] limit, fails A-CFG construction, or
    /// panics its worker comes back `Degraded` with a typed
    /// [`AnalysisError`]; the other functions are unaffected.
    pub fn analyze_module(&self, module: &Module, engine: EngineKind) -> ModuleReport {
        let names: Vec<&str> = module.public_functions().map(|f| f.name.as_str()).collect();
        let faults = self.config.faults.merged_with_env();
        // Two-level split: functions first, then left-over workers go
        // into each function's engine loops. `total = outer * inner`
        // (rounded down), so a module with one big function gets the
        // whole pool intra-function.
        let total = lcm_core::par::effective_jobs(self.config.jobs);
        let outer = total.min(names.len()).max(1);
        let inner = Detector::new(DetectorConfig {
            jobs: (total / outer).max(1),
            ..self.config.clone()
        });
        let results = lcm_core::par::map_indexed_catch(&names, outer, |i, name| {
            inner.analyze_function_governed(module, name, engine, i, &faults)
        });
        let functions = results
            .into_iter()
            .zip(&names)
            .map(|(res, name)| match res {
                Ok(report) => report,
                Err(message) => FunctionReport::degraded(
                    name.to_string(),
                    AnalysisError::WorkerPanic { message },
                ),
            })
            .collect();
        ModuleReport { functions }
    }

    /// Analyzes a single function. A missing function, irreducible
    /// control flow, an exceeded budget, or an armed fault site yields a
    /// `Degraded` report rather than a panic.
    pub fn analyze_function(
        &self,
        module: &Module,
        fname: &str,
        engine: EngineKind,
    ) -> FunctionReport {
        let index = module
            .public_functions()
            .position(|f| f.name == fname)
            .unwrap_or(0);
        let faults = self.config.faults.merged_with_env();
        self.analyze_function_governed(module, fname, engine, index, &faults)
    }

    /// The governed per-function pipeline. `index` is the function's
    /// position in module order (keys the fault plan); panics from the
    /// `worker_panic` site (or real bugs) are caught by
    /// [`Self::analyze_module`]'s `catch_unwind` fan-out.
    fn analyze_function_governed(
        &self,
        module: &Module,
        fname: &str,
        engine: EngineKind,
        index: usize,
        faults: &FaultPlan,
    ) -> FunctionReport {
        let start = Instant::now();
        let gov = Arc::new(ResourceGovernor::new(
            self.config.budgets.clone(),
            faults,
            index,
        ));
        if gov.fault_fires(site::WORKER_PANIC) {
            panic!("injected fault: worker_panic in function {index} (`{fname}`)");
        }
        let degraded = |err: AnalysisError, start: Instant| {
            let mut r = FunctionReport::degraded(fname.to_string(), err);
            r.runtime = start.elapsed();
            r
        };
        if !gov.poll_now() {
            return degraded(gov.tripped().expect("governor tripped"), start);
        }
        let t0 = Instant::now();
        let mut sp = lcm_obs::span("acfg_build", "detect");
        sp.arg_str("fn", fname);
        let acfg = if gov.fault_fires(site::MALFORMED_IR) {
            Err(AnalysisError::MalformedIr {
                message: format!("injected fault: malformed_ir in `{fname}`"),
            })
        } else {
            lcm_ir::acfg::build_acfg(module, fname).map_err(|e| AnalysisError::MalformedIr {
                message: e.to_string(),
            })
        };
        drop(sp);
        let acfg = match acfg {
            Ok(a) => a,
            Err(e) => return degraded(e, start),
        };
        let acfg_build = t0.elapsed();
        let t1 = Instant::now();
        let mut sp = lcm_obs::span("saeg_build", "detect");
        sp.arg_str("fn", fname);
        let saeg = Saeg::from_acfg(fname, acfg, self.config.spec);
        sp.arg_u64("events", saeg.events.len() as u64);
        drop(sp);
        let saeg_build = t1.elapsed();
        let mut report = if !gov.check_saeg(saeg.events.len(), saeg.edge_count()) || !gov.poll_now()
        {
            degraded(gov.tripped().expect("governor tripped"), start)
        } else {
            self.analyze_saeg_report_governed(module, &saeg, engine, Some(&gov))
        };
        report.saeg_size = saeg.events.len();
        report.timings.acfg_build = acfg_build;
        report.timings.saeg_build = saeg_build;
        report.runtime = start.elapsed();
        report
    }

    /// Runs one engine over an already-built S-AEG, producing a full
    /// report (filters, severity ordering, phase timings) — this lets
    /// callers that need several engines over the same function build
    /// the S-AEG once. `timings.acfg_build`/`saeg_build` are zero here;
    /// [`Self::analyze_function`] fills them in. Ungoverned: budgets and
    /// fault sites are not applied (see [`Self::analyze_saeg_report_at`]).
    pub fn analyze_saeg_report(
        &self,
        module: &Module,
        saeg: &Saeg,
        engine: EngineKind,
    ) -> FunctionReport {
        self.analyze_saeg_report_governed(module, saeg, engine, None)
    }

    /// Like [`Self::analyze_saeg_report`], but governed by
    /// [`DetectorConfig::budgets`] and the fault plan, with the function
    /// at `index` in module order. Used by callers that build S-AEGs
    /// themselves (the fig8 bench) but still want graceful degradation.
    pub fn analyze_saeg_report_at(
        &self,
        module: &Module,
        saeg: &Saeg,
        engine: EngineKind,
        index: usize,
    ) -> FunctionReport {
        let faults = self.config.faults.merged_with_env();
        let gov = Arc::new(ResourceGovernor::new(
            self.config.budgets.clone(),
            &faults,
            index,
        ));
        if !gov.check_saeg(saeg.events.len(), saeg.edge_count()) || !gov.poll_now() {
            let mut r = FunctionReport::degraded(
                saeg.fname.clone(),
                gov.tripped().expect("governor tripped"),
            );
            r.saeg_size = saeg.events.len();
            return r;
        }
        self.analyze_saeg_report_governed(module, saeg, engine, Some(&gov))
    }

    fn analyze_saeg_report_governed(
        &self,
        module: &Module,
        saeg: &Saeg,
        engine: EngineKind,
        gov: Option<&Arc<ResourceGovernor>>,
    ) -> FunctionReport {
        let start = Instant::now();
        let (mut findings, timings) = self.analyze_saeg_timed(saeg, engine, gov);
        if self.config.secret_filter {
            findings.retain(|f| secret_relevant(module, saeg, f));
        }
        findings.sort_by_key(|f| std::cmp::Reverse(f.class.severity_rank()));
        // Findings gathered before a trip are kept: a degraded report is
        // a lower bound, not garbage.
        let status = match gov.and_then(|g| g.tripped()) {
            Some(err) => FunctionStatus::Degraded(err),
            None => FunctionStatus::Completed,
        };
        FunctionReport {
            name: saeg.fname.clone(),
            transmitters: findings,
            saeg_size: saeg.events.len(),
            runtime: start.elapsed(),
            timings,
            status,
            cache: CacheStatus::Bypass,
        }
    }

    /// Runs one engine over an already-built S-AEG.
    pub fn analyze_saeg(&self, saeg: &Saeg, engine: EngineKind) -> Vec<Finding> {
        self.analyze_saeg_timed(saeg, engine, None).0
    }

    /// Engine run with the encode/solve/classify breakdown attached.
    fn analyze_saeg_timed(
        &self,
        saeg: &Saeg,
        engine: EngineKind,
        gov: Option<&Arc<ResourceGovernor>>,
    ) -> (Vec<Finding>, PhaseTimings) {
        let t0 = Instant::now();
        let mut sp = lcm_obs::span("engine_run", "detect");
        sp.arg_str("fn", &saeg.fname);
        sp.arg_str("engine", engine.label());
        let gaddr = generalized_addr(saeg);
        let ctrl = ctrl_edges(saeg);
        let preds = DepPreds::build(saeg.events.len(), &gaddr, &ctrl);
        // Whether the engines' duplicate-block fast paths may answer
        // checks without consulting the solver layer at all.
        let pf = !self.config.disable_prefilter && !lcm_aeg::prefilter_disabled_by_env();
        let incremental =
            !self.config.disable_incremental && !lcm_aeg::incremental_disabled_by_env();
        let mut feas = Feasibility::with_prefilter(saeg, !self.config.disable_prefilter);
        feas.set_incremental(incremental);
        if let Some(g) = gov {
            feas.attach_governor(Arc::clone(g));
        }
        let jobs = lcm_core::par::effective_jobs(self.config.jobs);
        let (mut raw, extra) = match engine {
            EngineKind::Pht => self.run_pht(saeg, &preds, pf, &mut feas, jobs),
            EngineKind::Stl => self.run_stl(saeg, &gaddr, &ctrl, pf, &mut feas, jobs),
            EngineKind::Psf => self.run_psf(saeg, &gaddr, pf, &mut feas, jobs),
        };
        // Deduplicate by (transmitter, class, primitive); keep first.
        let mut seen = std::collections::HashSet::new();
        raw.retain(|f| seen.insert(f.key()));
        if let Some(c) = self.config.target_class {
            raw.retain(|f| f.class == c);
        }
        let st = stats_add(feas.stats(), extra);
        sp.arg_u64("sat_queries", st.queries);
        sp.arg_u64("queries_avoided", st.queries_avoided);
        sp.arg_u64("solver_reuses", st.solver_reuses);
        sp.arg_u64("findings", raw.len() as u64);
        drop(sp);
        absorb_feas_stats(&st);
        let total = t0.elapsed();
        let timings = PhaseTimings {
            encode: st.encode,
            solve: st.solve,
            classify: total.saturating_sub(st.encode + st.solve),
            sat_queries: st.queries,
            memo_hits: st.memo_hits,
            queries_avoided: st.queries_avoided,
            prefilter_hits: st.prefilter_hits,
            solver_reuses: st.solver_reuses,
            clauses_retained: st.clauses_retained,
            ..PhaseTimings::default()
        };
        (raw, timings)
    }

    fn within_window(&self, saeg: &Saeg, a: EventId, t: EventId) -> bool {
        let (pa, pt) = (saeg.events[a.0].pos, saeg.events[t.0].pos);
        pt >= pa && pt - pa <= self.config.window
    }

    /// PHT engine: for each conditional branch and misprediction
    /// direction, the attacker poisons the predictor (§3.3) and every
    /// event in the speculative window may execute transiently.
    ///
    /// `jobs > 1` splits the (branch, direction) pairs across workers,
    /// each on its own [`Feasibility`] clone; unit-order merge keeps the
    /// output byte-identical to the serial loop.
    fn run_pht(
        &self,
        saeg: &Saeg,
        preds: &DepPreds,
        pf: bool,
        feas: &mut Feasibility,
        jobs: usize,
    ) -> (Vec<Finding>, lcm_aeg::FeasStats) {
        let n = saeg.events.len();
        let units: Vec<(usize, bool)> = (0..saeg.branches.len())
            .flat_map(|bi| [(bi, true), (bi, false)])
            .collect();
        if jobs <= 1 || units.len() <= 1 {
            let mut out = Vec::new();
            // Window membership bitset, reused across (branch,
            // direction) pairs so the hot loops avoid a binary search
            // per candidate.
            let mut in_win = vec![false; n];
            let mut steer = SteerCache::new(n);
            for br in &saeg.branches {
                if !feas.governor_ok() {
                    break;
                }
                for mispredict_then in [true, false] {
                    self.pht_unit(
                        saeg,
                        preds,
                        pf,
                        feas,
                        br,
                        mispredict_then,
                        &mut in_win,
                        &mut steer,
                        &mut out,
                    );
                }
            }
            return (out, lcm_aeg::FeasStats::default());
        }
        work_units().add(units.len() as u64);
        let template: &Feasibility = feas;
        let results = lcm_core::par::map_indexed_with(
            &units,
            jobs,
            || (template.clone(), vec![false; n], SteerCache::new(n)),
            |(wf, in_win, steer), _, &(bi, mispredict_then)| {
                let before = wf.stats();
                let mut out = Vec::new();
                if wf.governor_ok() {
                    self.pht_unit(
                        saeg,
                        preds,
                        pf,
                        wf,
                        &saeg.branches[bi],
                        mispredict_then,
                        in_win,
                        steer,
                        &mut out,
                    );
                }
                (out, stats_delta(wf.stats(), before))
            },
        );
        merge_units(results)
    }

    /// One PHT work unit: everything the engine does for a single
    /// (branch, misprediction-direction) pair. Starts and ends with an
    /// empty assumption stack; `in_win` is caller-provided scratch
    /// (cleared again on exit) sized to the event count.
    #[allow(clippy::too_many_arguments)]
    fn pht_unit(
        &self,
        saeg: &Saeg,
        preds: &DepPreds,
        pf: bool,
        feas: &mut Feasibility,
        br: &lcm_aeg::BranchInfo,
        mispredict_then: bool,
        in_win: &mut [bool],
        steer: &mut SteerCache,
        out: &mut Vec<Finding>,
    ) {
        let Some(dec) = feas.decision_lit(br.block) else {
            return;
        };
        {
            // Architectural direction is the opposite of the
            // mispredicted fetch direction.
            let arch_dir = if mispredict_then { !dec } else { dec };
            let base = feas.mark();
            let br_lit = feas.arch_lit(br.block);
            feas.push(br_lit);
            feas.push(arch_dir);
            if !feas.check_stack() {
                feas.truncate(base);
                return;
            }
            let window = saeg.spec_window(br, mispredict_then);
            for &e in &window {
                in_win[e.0] = true;
            }
            for &t in &window {
                if !feas.governor_ok() {
                    break;
                }
                let te = &saeg.events[t.0];
                if te.kind == EventKind::Fence {
                    continue;
                }
                // --- data chains: access -gaddr-> t ---
                for &access in &preds.gaddr[t.0] {
                    if access == t || !self.within_window(saeg, access, t) {
                        continue;
                    }
                    let access_transient = in_win[access.0];
                    if !access_transient && !saeg.precedes(access, t) {
                        continue;
                    }
                    let m = feas.mark();
                    if !access_transient {
                        let l = feas.arch_lit(saeg.events[access.0].block);
                        feas.push(l);
                    }
                    // A transient access adds nothing to the stack:
                    // the answer is the base query's, already true.
                    let ok = if pf && access_transient {
                        feas.note_prefilter_hit();
                        true
                    } else {
                        feas.check_stack()
                    };
                    if !ok {
                        feas.truncate(m);
                        continue;
                    }
                    self.classify_data(
                        saeg,
                        preds,
                        feas,
                        br.block,
                        t,
                        access,
                        access_transient,
                        SpeculationPrimitive::ConditionalBranch,
                        None,
                        steer,
                        out,
                    );
                    feas.truncate(m);
                }
                // --- extension: speculative-interference DT (§6.1's
                // "new attack variant"): the transient t warms the
                // line of a committed same-address load, whose
                // hit/miss then reveals t's (secret-derived) address.
                if self.config.detect_interference {
                    self.interference_findings(saeg, preds, feas, br.block, t, pf, out);
                }
                // --- control chains: access -ctrl-> t ---
                for &access in &preds.ctrl[t.0] {
                    if access == t || !self.within_window(saeg, access, t) {
                        continue;
                    }
                    let access_transient = in_win[access.0];
                    let m = feas.mark();
                    if !access_transient {
                        let l = feas.arch_lit(saeg.events[access.0].block);
                        feas.push(l);
                    }
                    let ok = if pf && access_transient {
                        feas.note_prefilter_hit();
                        true
                    } else {
                        feas.check_stack()
                    };
                    if !ok {
                        feas.truncate(m);
                        continue;
                    }
                    self.classify_ctrl(
                        saeg,
                        preds,
                        feas,
                        br.block,
                        t,
                        access,
                        access_transient,
                        SpeculationPrimitive::ConditionalBranch,
                        None,
                        steer,
                        out,
                    );
                    feas.truncate(m);
                }
            }
            for &e in &window {
                in_win[e.0] = false;
            }
            feas.truncate(base);
        }
    }

    /// STL engine: a load may bypass an older same-address store whose
    /// address has not resolved (§3.3), forwarding stale data into the
    /// transmitter chain.
    fn run_stl(
        &self,
        saeg: &Saeg,
        gaddr: &Gaddr,
        ctrl: &Relation,
        pf: bool,
        feas: &mut Feasibility,
        jobs: usize,
    ) -> (Vec<Finding>, lcm_aeg::FeasStats) {
        let loads: Vec<EventId> = saeg.loads().map(|e| e.id).collect();
        let stores: Vec<EventId> = saeg.stores().map(|e| e.id).collect();
        if jobs <= 1 || loads.len() <= 1 {
            let mut out = Vec::new();
            for &l in &loads {
                if !feas.governor_ok() {
                    break;
                }
                self.stl_unit(saeg, gaddr, ctrl, &stores, pf, feas, l, &mut out);
            }
            return (out, lcm_aeg::FeasStats::default());
        }
        work_units().add(loads.len() as u64);
        let template: &Feasibility = feas;
        let results = lcm_core::par::map_indexed_with(
            &loads,
            jobs,
            || template.clone(),
            |wf, _, &l| {
                let before = wf.stats();
                let mut out = Vec::new();
                if wf.governor_ok() {
                    self.stl_unit(saeg, gaddr, ctrl, &stores, pf, wf, l, &mut out);
                }
                (out, stats_delta(wf.stats(), before))
            },
        );
        merge_units(results)
    }

    /// One STL work unit: the full bypass + chain search for a single
    /// load. Starts and ends with an empty assumption stack.
    #[allow(clippy::too_many_arguments)]
    fn stl_unit(
        &self,
        saeg: &Saeg,
        gaddr: &Gaddr,
        ctrl: &Relation,
        stores: &[EventId],
        pf: bool,
        feas: &mut Feasibility,
        l: EventId,
        out: &mut Vec<Finding>,
    ) {
        {
            let le = &saeg.events[l.0];
            // Find a bypassable older store to a may/must-aliasing address.
            let mut bypassed: Option<EventId> = None;
            for &s in stores {
                if s == l || !saeg.precedes(s, l) {
                    continue;
                }
                let se = &saeg.events[s.0];
                if saeg.events[l.0].pos - se.pos > self.config.spec.lsq_size {
                    continue;
                }
                let a = match (se.addr, le.addr) {
                    (Some(x), Some(y)) => alias(x, y),
                    _ => AliasResult::May, // havoc side
                };
                if a == AliasResult::No {
                    continue;
                }
                if saeg.always_fenced_between(s, l) {
                    continue;
                }
                bypassed = Some(s);
                break;
            }
            let Some(s) = bypassed else { return };
            let base = feas.mark();
            let s_blk = saeg.events[s.0].block;
            let l_blk = saeg.events[l.0].block;
            feas.push(feas.arch_lit(s_blk));
            feas.push(feas.arch_lit(l_blk));
            if !feas.check_stack() {
                feas.truncate(base);
                return;
            }
            // Stale value of l flows to transmitters. The stale read is a
            // transient access (its value is squashed on re-execution).
            for t in gaddr.plain.successors(l.0).map(EventId) {
                if t == l || !self.within_window(saeg, l, t) || !saeg.precedes(l, t) {
                    continue;
                }
                let m = feas.mark();
                let t_blk = saeg.events[t.0].block;
                feas.push(feas.arch_lit(t_blk));
                // A block already on the verified stack adds nothing:
                // the check's answer is the previous one, already true.
                let ok = if pf && (t_blk == s_blk || t_blk == l_blk) {
                    feas.note_prefilter_hit();
                    true
                } else {
                    feas.check_stack()
                };
                if !ok {
                    feas.truncate(m);
                    continue;
                }
                // DT: t leaks l's stale data directly.
                out.push(self.finding(
                    saeg,
                    feas,
                    t,
                    TransmitterClass::Data,
                    true,
                    Some(l),
                    true,
                    None,
                    SpeculationPrimitive::StoreForwarding,
                    None,
                    Some(s),
                ));
                // UDT: l -> access(t') -> transmit(t''): here t is the
                // access whose address carries stale data; its value
                // steers a further transmitter.
                for t2 in gaddr.plain.successors(t.0).map(EventId) {
                    if t2 == t || !self.within_window(saeg, t, t2) || !saeg.precedes(t, t2) {
                        continue;
                    }
                    let m2 = feas.mark();
                    let t2_blk = saeg.events[t2.0].block;
                    feas.push(feas.arch_lit(t2_blk));
                    let ok = if pf && (t2_blk == s_blk || t2_blk == l_blk || t2_blk == t_blk) {
                        feas.note_prefilter_hit();
                        true
                    } else {
                        feas.check_stack()
                    };
                    if !ok {
                        feas.truncate(m2);
                        continue;
                    }
                    out.push(self.finding(
                        saeg,
                        feas,
                        t2,
                        TransmitterClass::UniversalData,
                        true,
                        Some(t),
                        true,
                        Some(l),
                        SpeculationPrimitive::StoreForwarding,
                        None,
                        Some(s),
                    ));
                    feas.truncate(m2);
                }
                // UCT: t's value steers a branch shadowing a transmitter.
                for t2 in ctrl.successors(t.0).map(EventId) {
                    if t2 == t || !self.within_window(saeg, t, t2) {
                        continue;
                    }
                    let m2 = feas.mark();
                    let t2_blk = saeg.events[t2.0].block;
                    feas.push(feas.arch_lit(t2_blk));
                    let ok = if pf && (t2_blk == s_blk || t2_blk == l_blk || t2_blk == t_blk) {
                        feas.note_prefilter_hit();
                        true
                    } else {
                        feas.check_stack()
                    };
                    if !ok {
                        feas.truncate(m2);
                        continue;
                    }
                    out.push(self.finding(
                        saeg,
                        feas,
                        t2,
                        TransmitterClass::UniversalControl,
                        false,
                        Some(t),
                        true,
                        Some(l),
                        SpeculationPrimitive::StoreForwarding,
                        None,
                        Some(s),
                    ));
                    feas.truncate(m2);
                }
                feas.truncate(m);
            }
            // CT: the stale value feeds a branch condition whose shadow
            // contains a transmitter.
            for t in ctrl.successors(l.0).map(EventId) {
                if t == l || !self.within_window(saeg, l, t) {
                    continue;
                }
                let m = feas.mark();
                let t_blk = saeg.events[t.0].block;
                feas.push(feas.arch_lit(t_blk));
                let ok = if pf && (t_blk == s_blk || t_blk == l_blk) {
                    feas.note_prefilter_hit();
                    true
                } else {
                    feas.check_stack()
                };
                if !ok {
                    feas.truncate(m);
                    continue;
                }
                out.push(self.finding(
                    saeg,
                    feas,
                    t,
                    TransmitterClass::Control,
                    false,
                    Some(l),
                    true,
                    None,
                    SpeculationPrimitive::StoreForwarding,
                    None,
                    Some(s),
                ));
                feas.truncate(m);
            }
            feas.truncate(base);
        }
    }

    /// Extension: findings where a transient event `t` fills the cache
    /// line of a committed same-address load `e` (whose architectural
    /// `rf` partner is not `t` — an rf-NI violation with an architectural
    /// receiver). Emitted as DTs when `t`'s address carries data.
    /// Assumes the PHT base requirements (branch + architectural
    /// direction) are already on `feas`'s assumption stack.
    fn interference_findings(
        &self,
        saeg: &Saeg,
        preds: &DepPreds,
        feas: &mut Feasibility,
        branch: lcm_ir::BlockId,
        t: EventId,
        pf: bool,
        out: &mut Vec<Finding>,
    ) {
        let te = &saeg.events[t.0];
        let Some(t_addr) = te.addr else { return };
        for e in saeg.loads() {
            if e.id == t {
                continue;
            }
            let Some(e_addr) = e.addr else { continue };
            if alias(t_addr, e_addr) == AliasResult::No {
                continue;
            }
            let m = feas.mark();
            feas.push(feas.arch_lit(e.block));
            let ok = if pf && e.block == branch {
                feas.note_prefilter_hit();
                true
            } else {
                feas.check_stack()
            };
            if !ok {
                feas.truncate(m);
                continue;
            }
            for &access in &preds.gaddr[t.0] {
                if access == t {
                    continue;
                }
                let mut f = self.finding(
                    saeg,
                    feas,
                    t,
                    TransmitterClass::Data,
                    true,
                    Some(access),
                    true,
                    None,
                    SpeculationPrimitive::ConditionalBranch,
                    Some(branch),
                    None,
                );
                f.interference = true;
                out.push(f);
            }
            feas.truncate(m);
        }
    }

    /// PSF engine (extension): alias prediction forwards an older store's
    /// data to a load of a **mismatching** address (Fig. 4b). Any older
    /// in-LSQ store is a forwarding candidate — including ones the alias
    /// oracle proves distinct, which is exactly what distinguishes PSF
    /// from ordinary store forwarding.
    fn run_psf(
        &self,
        saeg: &Saeg,
        gaddr: &Gaddr,
        pf: bool,
        feas: &mut Feasibility,
        jobs: usize,
    ) -> (Vec<Finding>, lcm_aeg::FeasStats) {
        let loads: Vec<EventId> = saeg.loads().map(|e| e.id).collect();
        let stores: Vec<EventId> = saeg.stores().map(|e| e.id).collect();
        if jobs <= 1 || loads.len() <= 1 {
            let mut out = Vec::new();
            for &l in &loads {
                if !feas.governor_ok() {
                    break;
                }
                self.psf_unit(saeg, gaddr, &stores, pf, feas, l, &mut out);
            }
            return (out, lcm_aeg::FeasStats::default());
        }
        work_units().add(loads.len() as u64);
        let template: &Feasibility = feas;
        let results = lcm_core::par::map_indexed_with(
            &loads,
            jobs,
            || template.clone(),
            |wf, _, &l| {
                let before = wf.stats();
                let mut out = Vec::new();
                if wf.governor_ok() {
                    self.psf_unit(saeg, gaddr, &stores, pf, wf, l, &mut out);
                }
                (out, stats_delta(wf.stats(), before))
            },
        );
        merge_units(results)
    }

    /// One PSF work unit: all mismatching-address forwarding candidates
    /// for a single load. Starts and ends with an empty assumption
    /// stack.
    #[allow(clippy::too_many_arguments)]
    fn psf_unit(
        &self,
        saeg: &Saeg,
        gaddr: &Gaddr,
        stores: &[EventId],
        pf: bool,
        feas: &mut Feasibility,
        l: EventId,
        out: &mut Vec<Finding>,
    ) {
        {
            for &s in stores {
                if s == l || !saeg.precedes(s, l) {
                    continue;
                }
                let se = &saeg.events[s.0];
                if saeg.events[l.0].pos - se.pos > self.config.spec.lsq_size {
                    continue;
                }
                // The interesting PSF pairs are the ones ordinary STL
                // excludes: provably different addresses.
                let a = match (se.addr, saeg.events[l.0].addr) {
                    (Some(x), Some(y)) => alias(x, y),
                    _ => AliasResult::May,
                };
                if a != AliasResult::No {
                    continue; // covered by the STL engine
                }
                if saeg.always_fenced_between(s, l) {
                    continue;
                }
                let base = feas.mark();
                let s_blk = se.block;
                let l_blk = saeg.events[l.0].block;
                feas.push(feas.arch_lit(s_blk));
                feas.push(feas.arch_lit(l_blk));
                if !feas.check_stack() {
                    feas.truncate(base);
                    continue;
                }
                // The mispredicted forward gives l the *store's data*; any
                // transmitter whose address chains from l leaks it.
                for t in gaddr.plain.successors(l.0).map(EventId) {
                    if t == l || !self.within_window(saeg, l, t) || !saeg.precedes(l, t) {
                        continue;
                    }
                    let m = feas.mark();
                    let t_blk = saeg.events[t.0].block;
                    feas.push(feas.arch_lit(t_blk));
                    let ok = if pf && (t_blk == s_blk || t_blk == l_blk) {
                        feas.note_prefilter_hit();
                        true
                    } else {
                        feas.check_stack()
                    };
                    if !ok {
                        feas.truncate(m);
                        continue;
                    }
                    out.push(self.finding(
                        saeg,
                        feas,
                        t,
                        TransmitterClass::Data,
                        true,
                        Some(l),
                        true,
                        None,
                        SpeculationPrimitive::AliasPrediction,
                        None,
                        Some(s),
                    ));
                    for t2 in gaddr.plain.successors(t.0).map(EventId) {
                        if t2 == t || !self.within_window(saeg, t, t2) || !saeg.precedes(t, t2) {
                            continue;
                        }
                        let m2 = feas.mark();
                        let t2_blk = saeg.events[t2.0].block;
                        feas.push(feas.arch_lit(t2_blk));
                        let ok = if pf && (t2_blk == s_blk || t2_blk == l_blk || t2_blk == t_blk) {
                            feas.note_prefilter_hit();
                            true
                        } else {
                            feas.check_stack()
                        };
                        if !ok {
                            feas.truncate(m2);
                            continue;
                        }
                        out.push(self.finding(
                            saeg,
                            feas,
                            t2,
                            TransmitterClass::UniversalData,
                            true,
                            Some(t),
                            true,
                            Some(l),
                            SpeculationPrimitive::AliasPrediction,
                            None,
                            Some(s),
                        ));
                        feas.truncate(m2);
                    }
                    feas.truncate(m);
                }
                feas.truncate(base);
            }
        }
    }

    /// Emits DT and (if steerable) UDT findings for a data chain. The
    /// chain's feasibility requirements are the current assumption stack.
    #[allow(clippy::too_many_arguments)]
    fn classify_data(
        &self,
        saeg: &Saeg,
        preds: &DepPreds,
        feas: &mut Feasibility,
        branch: lcm_ir::BlockId,
        t: EventId,
        access: EventId,
        access_transient: bool,
        primitive: SpeculationPrimitive,
        bypassed: Option<EventId>,
        steer: &mut SteerCache,
        out: &mut Vec<Finding>,
    ) {
        out.push(self.finding(
            saeg,
            feas,
            t,
            TransmitterClass::Data,
            true,
            Some(access),
            access_transient,
            None,
            primitive,
            Some(branch),
            bypassed,
        ));
        // Universal upgrade: an index steers the access.
        let index_rel = if self.config.gep_filter {
            &preds.gep
        } else {
            &preds.gaddr
        };
        let steerable = steer.steerable(saeg, access);
        if steerable && (!self.config.universal_needs_transient_access || access_transient) {
            for &index in &index_rel[access.0] {
                if index == access || !self.within_window(saeg, index, t) {
                    continue;
                }
                out.push(self.finding(
                    saeg,
                    feas,
                    t,
                    TransmitterClass::UniversalData,
                    true,
                    Some(access),
                    access_transient,
                    Some(index),
                    primitive,
                    Some(branch),
                    bypassed,
                ));
            }
        }
    }

    /// Emits CT and (if steerable) UCT findings for a control chain. The
    /// chain's feasibility requirements are the current assumption stack.
    #[allow(clippy::too_many_arguments)]
    fn classify_ctrl(
        &self,
        saeg: &Saeg,
        preds: &DepPreds,
        feas: &mut Feasibility,
        branch: lcm_ir::BlockId,
        t: EventId,
        access: EventId,
        access_transient: bool,
        primitive: SpeculationPrimitive,
        bypassed: Option<EventId>,
        steer: &mut SteerCache,
        out: &mut Vec<Finding>,
    ) {
        out.push(self.finding(
            saeg,
            feas,
            t,
            TransmitterClass::Control,
            true,
            Some(access),
            access_transient,
            None,
            primitive,
            Some(branch),
            bypassed,
        ));
        let index_rel = if self.config.gep_filter {
            &preds.gep
        } else {
            &preds.gaddr
        };
        let steerable = steer.steerable(saeg, access);
        if steerable && (!self.config.universal_needs_transient_access || access_transient) {
            for &index in &index_rel[access.0] {
                if index == access || !self.within_window(saeg, index, t) {
                    continue;
                }
                out.push(self.finding(
                    saeg,
                    feas,
                    t,
                    TransmitterClass::UniversalControl,
                    true,
                    Some(access),
                    access_transient,
                    Some(index),
                    primitive,
                    Some(branch),
                    bypassed,
                ));
            }
        }
    }

    /// Builds one finding; the witness seed is read off the current
    /// assumption stack — no solver call. The full path is materialized
    /// lazily by [`Finding::witness_path`] when a witness is rendered.
    #[allow(clippy::too_many_arguments)]
    fn finding(
        &self,
        saeg: &Saeg,
        feas: &mut Feasibility,
        t: EventId,
        class: TransmitterClass,
        transient_transmitter: bool,
        access: Option<EventId>,
        access_transient: bool,
        index: Option<EventId>,
        primitive: SpeculationPrimitive,
        branch: Option<lcm_ir::BlockId>,
        bypassed_store: Option<EventId>,
    ) -> Finding {
        let seed = feas.stack_seed();
        Finding {
            function: saeg.fname.clone(),
            transmitter: t,
            transmitter_inst: saeg.events[t.0].inst,
            class,
            transient_transmitter,
            access,
            access_transient,
            index,
            primitive,
            branch,
            bypassed_store,
            interference: false,
            witness_blocks: seed.blocks,
            witness_dir: seed.branch_dir,
        }
    }
}

/// Whether a finding's access may read secret-marked memory (extension:
/// the secrecy-label filter of §7). `Unknown` regions (unresolvable
/// pointers) are conservatively secret-reaching.
pub fn secret_relevant(module: &Module, saeg: &Saeg, f: &Finding) -> bool {
    use lcm_aeg::addr::Region;
    let probe = f.access.unwrap_or(f.transmitter);
    match saeg.events[probe.0].addr.map(|a| a.region) {
        Some(Region::Global(g)) => module.globals.get(g as usize).is_some_and(|gl| gl.secret),
        Some(Region::Alloca(_)) => false,
        Some(Region::Unknown) | None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pht(src: &str) -> ModuleReport {
        let m = lcm_minic::compile(src).unwrap();
        Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht)
    }

    fn stl(src: &str) -> ModuleReport {
        let m = lcm_minic::compile(src).unwrap();
        Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Stl)
    }

    const SPECTRE_V1: &str = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }"#;

    #[test]
    fn spectre_v1_found_by_pht() {
        let r = pht(SPECTRE_V1);
        assert!(r.count(TransmitterClass::UniversalData) >= 1, "UDT found");
        assert!(r.count(TransmitterClass::Data) >= 1, "DTs found");
        assert!(r.count(TransmitterClass::Control) >= 1, "CTs found");
        let udt = r
            .findings()
            .find(|f| f.class == TransmitterClass::UniversalData)
            .unwrap();
        assert!(udt.transient_transmitter);
        assert!(udt.access_transient, "v1's access is transient");
        assert_eq!(udt.primitive, SpeculationPrimitive::ConditionalBranch);
        assert!(udt.branch.is_some());
        assert!(!udt.witness_blocks.is_empty());
        // Lazy witness: the path materializes from the seed on demand.
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let saeg = Saeg::build(&m, "victim", SpeculationConfig::default()).unwrap();
        let path = udt.witness_path(&saeg);
        assert!(path.contains(&lcm_ir::BlockId(0)));
        assert!(path.contains(&udt.branch.unwrap()));
    }

    #[test]
    fn spectre_v1_variant_access_committed() {
        // Fig. 3: x = A[y] before the bounds check; access commits, so the
        // universal pattern is downgraded to DT under the §6.2.1
        // restriction (still detected as UDT with the restriction off).
        let src = r#"
            int A[16]; int B[256]; int size_A; int tmp;
            void victim(int y) {
                int x = A[y];
                if (y < size_A) {
                    tmp &= B[x];
                }
            }"#;
        let restricted = pht(src);
        assert!(restricted.count(TransmitterClass::Data) >= 1);
        let m = lcm_minic::compile(src).unwrap();
        let relaxed = Detector::new(DetectorConfig {
            universal_needs_transient_access: false,
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        assert!(relaxed.count(TransmitterClass::UniversalData) >= 1);
        let udt = relaxed
            .findings()
            .find(|f| f.class == TransmitterClass::UniversalData)
            .unwrap();
        assert!(!udt.access_transient, "Fig. 3's access commits");
    }

    #[test]
    fn safe_function_is_clean() {
        let r = pht("int A[16]; int t; void safe(int y) { t = A[0] + A[1]; }");
        assert!(r.is_clean());
        let r = stl("int A[16]; int t; void safe(int y) { t = A[0] + A[1]; }");
        assert!(r.is_clean());
    }

    #[test]
    fn fenced_spectre_v1_is_clean() {
        let src = r#"
            int A[16]; int B[256]; int size_A; int tmp;
            void victim(int y) {
                if (y < size_A) {
                    lfence();
                    tmp &= B[A[y]];
                }
            }"#;
        let r = pht(src);
        assert_eq!(r.count(TransmitterClass::UniversalData), 0);
        assert_eq!(r.count(TransmitterClass::Data), 0);
    }

    #[test]
    fn spectre_v4_found_by_stl_not_pht() {
        // STL01-style: the spilled parameter's reload can bypass its spill
        // store... make it explicit with an idx stored then reloaded.
        let src = r#"
            int A[16]; int B[256]; int pub_ary[256]; int sec[16]; int tmp;
            void case_1(int idx) {
                int ridx = idx & 15;
                sec[ridx] = 0;
                tmp &= pub_ary[sec[ridx]];
            }"#;
        let r = stl(src);
        assert!(
            r.count(TransmitterClass::Data) + r.count(TransmitterClass::UniversalData) >= 1,
            "STL leak found: {:?}",
            r.findings().collect::<Vec<_>>()
        );
        let f = r.findings().next().unwrap();
        assert_eq!(f.primitive, SpeculationPrimitive::StoreForwarding);
        assert!(f.bypassed_store.is_some());
    }

    #[test]
    fn target_class_filters_results() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let only_udt = Detector::new(DetectorConfig {
            target_class: Some(TransmitterClass::UniversalData),
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        assert!(only_udt
            .findings()
            .all(|f| f.class == TransmitterClass::UniversalData));
        assert!(only_udt.count(TransmitterClass::UniversalData) >= 1);
    }

    #[test]
    fn shallow_speculation_depth_misses_deep_transmitters() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let shallow = Detector::new(DetectorConfig {
            spec: SpeculationConfig::default().with_depth(1),
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        let deep = Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht);
        assert!(
            shallow.count(TransmitterClass::UniversalData)
                <= deep.count(TransmitterClass::UniversalData)
        );
    }

    #[test]
    fn both_branch_directions_considered() {
        // The leak sits on the else-side: misprediction toward else.
        let src = r#"
            int A[16]; int B[256]; int size_A; int tmp;
            void victim(int y) {
                if (y >= size_A) { tmp = 0; } else { tmp &= B[A[y]]; }
            }"#;
        let r = pht(src);
        assert!(r.count(TransmitterClass::UniversalData) >= 1);
    }

    #[test]
    fn runtime_and_size_recorded() {
        let r = pht(SPECTRE_V1);
        let f = &r.functions[0];
        assert!(f.saeg_size > 0);
    }

    /// A PSF-only gadget (Fig. 4b shape): the store and the leaking load
    /// provably never alias, so ordinary STL cannot forward — only alias
    /// prediction can.
    const PSF_GADGET: &str = r#"
        int C[2]; int A[4096]; int B[4096]; int tmp;
        void psf_victim(register int y) {
            C[0] = 64;
            tmp &= B[A[C[1] * y]];
        }"#;

    #[test]
    fn psf_engine_finds_alias_prediction_leak() {
        let m = lcm_minic::compile(PSF_GADGET).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let stl = det.analyze_module(&m, EngineKind::Stl);
        let psf = det.analyze_module(&m, EngineKind::Psf);
        assert!(
            stl.is_clean(),
            "constant indices never alias: STL stays clean, got {:?}",
            stl.findings().collect::<Vec<_>>()
        );
        assert!(!psf.is_clean(), "PSF forwards across mismatching addresses");
        let f = psf.findings().next().unwrap();
        assert_eq!(f.primitive, SpeculationPrimitive::AliasPrediction);
        assert!(f.bypassed_store.is_some());
        assert!(
            psf.count(TransmitterClass::UniversalData) >= 1,
            "the C[1]-load steers A, which steers B: a UDT"
        );
    }

    #[test]
    fn psf_engine_respects_fences() {
        let fenced = r#"
            int C[2]; int A[4096]; int B[4096]; int tmp;
            void psf_victim(register int y) {
                C[0] = 64;
                lfence();
                tmp &= B[A[C[1] * y]];
            }"#;
        let m = lcm_minic::compile(fenced).unwrap();
        let det = Detector::new(DetectorConfig::default());
        assert!(det.analyze_module(&m, EngineKind::Psf).is_clean());
    }

    #[test]
    fn secret_filter_keeps_secret_touching_chains_only() {
        // Two gadgets: one reads a secret-marked array, one a public one.
        let src = r#"
            int sec_table[16]; int pub_table[16]; int B[4096];
            int size; int tmp;
            void secret_victim(int x) {
                if (x < size)
                    tmp &= B[sec_table[x] * 512];
            }
            void public_victim(int x) {
                if (x < size)
                    tmp &= B[pub_table[x] * 512];
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let filtered = Detector::new(DetectorConfig {
            secret_filter: true,
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        let sec = filtered
            .functions
            .iter()
            .find(|f| f.name == "secret_victim")
            .unwrap();
        let pb = filtered
            .functions
            .iter()
            .find(|f| f.name == "public_victim")
            .unwrap();
        assert!(
            sec.transmitters
                .iter()
                .any(|f| f.class == TransmitterClass::UniversalData),
            "secret-reading UDT survives the filter"
        );
        assert!(
            pb.transmitters
                .iter()
                .filter(|f| f.class == TransmitterClass::UniversalData)
                .all(|f| {
                    // Any surviving UDT must not have a resolved public
                    // access region.
                    f.access.is_none()
                }),
            "public-only UDT chains are filtered: {:?}",
            pb.transmitters
        );
        // The unfiltered run flags both.
        let unfiltered =
            Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht);
        let pb_all = unfiltered
            .functions
            .iter()
            .find(|f| f.name == "public_victim")
            .unwrap();
        assert!(pb_all
            .transmitters
            .iter()
            .any(|f| f.class == TransmitterClass::UniversalData));
    }

    /// §6.2.1's completeness guarantee: "As long as addr dependencies span
    /// less than W_size instructions, Clou is only at risk of
    /// mis-classifying some universal transmitters as vanilla DTs/CTs; it
    /// will not miss them entirely."
    #[test]
    fn small_window_downgrades_but_does_not_lose_transmitters() {
        // Pad the index → access distance with filler accesses so the
        // universal chain spans more than the shrunken window.
        let src = r#"
            int A[16]; int B[4096]; int F[64]; int size; int tmp;
            void victim(int y) {
                if (y < size) {
                    int x = A[y];
                    tmp ^= F[0]; tmp ^= F[1]; tmp ^= F[2]; tmp ^= F[3];
                    tmp ^= F[4]; tmp ^= F[5]; tmp ^= F[6]; tmp ^= F[7];
                    tmp &= B[x * 512];
                }
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let full = Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht);
        assert!(full.count(TransmitterClass::UniversalData) >= 1);
        let shrunk = Detector::new(DetectorConfig {
            window: 6,
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        assert_eq!(
            shrunk.count(TransmitterClass::UniversalData),
            0,
            "chain no longer fits the window"
        );
        assert!(
            shrunk.count(TransmitterClass::Data) >= 1,
            "…but the transmitter is still reported, as a DT (§6.2.1)"
        );
    }

    #[test]
    fn interference_variant_detected_when_enabled() {
        // The transient A-load warms the line that the committed
        // join-block load of A[0] then reads: the "new DT variant".
        let src = r#"
            int A[4096]; int idx_tbl[16]; int size; int tmp;
            void victim(int x) {
                if (x < size) {
                    tmp &= A[idx_tbl[x] * 16];
                }
                tmp &= A[0];
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let with = Detector::new(DetectorConfig {
            detect_interference: true,
            ..DetectorConfig::default()
        })
        .analyze_module(&m, EngineKind::Pht);
        assert!(with.findings().any(|f| f.interference));
        let without = Detector::new(DetectorConfig::default()).analyze_module(&m, EngineKind::Pht);
        assert!(without.findings().all(|f| !f.interference));
    }
}
