//! Fence-insertion repair (§5, §6.1).
//!
//! Clou repairs Spectre v1/v4 leaks with a minimal number of `lfence`s.
//! The repair placements:
//!
//! * **PHT** finding — a fence at the head of the mispredicted-side
//!   successor(s) of the culprit branch kills every window it opens
//!   (the paper reports 1 fence per vulnerable PHT program);
//! * **STL** finding — a fence immediately before the bypassing load
//!   forces the older store to drain first.
//!
//! Placements are deduplicated (greedy set cover over findings sharing a
//! primitive site), yielding the paper's fence counts on the litmus
//! suites. Repair produces a *new module* in which each vulnerable
//! function is replaced by its repaired A-CFG, which re-analysis then
//! confirms clean.

use std::collections::BTreeSet;

use lcm_aeg::Saeg;
use lcm_core::speculation::{SpeculationConfig, SpeculationPrimitive};
use lcm_ir::{Function, Inst, Module, Terminator};

use crate::report::{Finding, ModuleReport};

/// Repairs one function given its findings. Returns the repaired function
/// (its A-CFG with fences inserted) and the number of fences added.
pub fn repair_function(saeg: &Saeg, findings: &[Finding]) -> (Function, usize) {
    let mut f = saeg.acfg.clone();
    // Collect placements: (block, inst-position-in-block).
    let mut placements: BTreeSet<(u32, usize)> = BTreeSet::new();
    for finding in findings {
        match finding.primitive {
            SpeculationPrimitive::ConditionalBranch => {
                if let Some(br_block) = finding.branch {
                    // Fence both successors' heads: misprediction in either
                    // direction is covered by one fence on the side that
                    // harbours the transmitter; fencing the side containing
                    // the transmitter suffices, but the witness only names
                    // the branch, so cover the side(s) reaching it.
                    if let Terminator::CondBr {
                        then_bb, else_bb, ..
                    } = f.blocks[br_block.0 as usize].term.clone()
                    {
                        let t_block = saeg.events[finding.transmitter.0].block;
                        for side in [then_bb, else_bb] {
                            if saeg.block_reaches(side, t_block) {
                                placements.insert((side.0, 0));
                            }
                        }
                    }
                }
            }
            SpeculationPrimitive::StoreForwarding | SpeculationPrimitive::AliasPrediction => {
                // Fence just before the bypassing load (the access /
                // index event of the finding).
                let target = finding
                    .index
                    .or(finding.access)
                    .unwrap_or(finding.transmitter);
                let ev = &saeg.events[target.0];
                let pos = f.blocks[ev.block.0 as usize]
                    .insts
                    .iter()
                    .position(|&i| i == ev.inst)
                    .unwrap_or(0);
                placements.insert((ev.block.0, pos));
            }
        }
    }
    // Insert back-to-front so positions stay valid.
    let count = placements.len();
    for &(block, pos) in placements.iter().rev() {
        let id = {
            f.insts.push(Inst::Fence);
            lcm_ir::InstId(f.insts.len() as u32 - 1)
        };
        let insts = &mut f.blocks[block as usize].insts;
        let pos = pos.min(insts.len());
        insts.insert(pos, id);
    }
    (f, count)
}

/// One repair pass: fixes every vulnerable function named in the report,
/// returning the repaired module and the number of fences inserted.
///
/// Repaired functions are replaced by their (fence-bearing) A-CFGs; all
/// other functions are kept as-is. A single pass can leave residual
/// leakage when several speculation sites share one deduplicated chain
/// (e.g. unrolled loop copies) — use [`repair`] for the closed loop.
pub fn repair_once(
    module: &Module,
    report: &ModuleReport,
    spec: SpeculationConfig,
) -> (Module, usize) {
    let mut out = module.clone();
    let mut total = 0;
    for fr in &report.functions {
        if fr.transmitters.is_empty() {
            continue;
        }
        let saeg = Saeg::build(module, &fr.name, spec).expect("A-CFG");
        let (fixed, n) = repair_function(&saeg, &fr.transmitters);
        total += n;
        if let Some(slot) = out.functions.iter_mut().find(|f| f.name == fr.name) {
            *slot = fixed;
        }
    }
    (out, total)
}

/// Repairs to a fixpoint: analyze → insert fences → re-analyze, until the
/// engine reports the module clean (or no further progress is possible).
/// Returns the repaired module and the total fences inserted.
///
/// This is the paper's "we direct Clou to perform fence insertion in all
/// benchmarks and confirm that all initially-detected leakage is
/// mitigated" loop (§6.1).
pub fn repair(
    module: &Module,
    detector: &crate::Detector,
    engine: crate::EngineKind,
) -> (Module, usize) {
    let mut current = module.clone();
    let mut total = 0;
    for _ in 0..16 {
        let report = detector.analyze_module(&current, engine);
        if report.is_clean() {
            break;
        }
        let (fixed, n) = repair_once(&current, &report, detector.config().spec);
        if n == 0 {
            break; // no placement found: avoid spinning
        }
        total += n;
        current = fixed;
    }
    (current, total)
}

/// Repairs against **all three engines** to a joint fixpoint: PHT, STL
/// and PSF findings are eliminated in turn until every engine reports the
/// module clean. Returns the repaired module and total fences inserted.
///
/// Used by the fuzz harness's repair re-verification: a program repaired
/// under one primitive may still leak under another, and the union
/// fixpoint is what "the fenced program is leak-free" means.
pub fn repair_all(module: &Module, detector: &crate::Detector) -> (Module, usize) {
    let engines = [
        crate::EngineKind::Pht,
        crate::EngineKind::Stl,
        crate::EngineKind::Psf,
    ];
    let mut current = module.clone();
    let mut total = 0;
    for _ in 0..8 {
        let mut inserted = 0;
        for engine in engines {
            let (fixed, n) = repair(&current, detector, engine);
            inserted += n;
            current = fixed;
        }
        if inserted == 0 {
            break;
        }
        total += inserted;
    }
    (current, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, DetectorConfig, EngineKind};

    const SPECTRE_V1: &str = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }"#;

    #[test]
    fn pht_repair_is_one_fence_and_clean() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let report = det.analyze_module(&m, EngineKind::Pht);
        assert!(!report.is_clean());
        let (fixed, fences) = repair(&m, &det, EngineKind::Pht);
        assert_eq!(fences, 1, "paper: 1 fence per vulnerable PHT program");
        let re = det.analyze_module(&fixed, EngineKind::Pht);
        assert!(
            re.is_clean(),
            "repaired module re-analyzes clean: {:?}",
            re.findings().collect::<Vec<_>>()
        );
    }

    #[test]
    fn stl_repair_clean_after_fences() {
        let src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(int idx) {
                int ridx = idx & 15;
                sec[ridx] = 0;
                tmp &= pub_ary[sec[ridx]];
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let report = det.analyze_module(&m, EngineKind::Stl);
        assert!(!report.is_clean());
        let (fixed, fences) = repair(&m, &det, EngineKind::Stl);
        assert!(fences >= 1);
        let re = det.analyze_module(&fixed, EngineKind::Stl);
        assert!(
            re.is_clean(),
            "still leaking: {:?}",
            re.findings().collect::<Vec<_>>()
        );
    }

    #[test]
    fn repair_all_is_clean_under_every_engine() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let (fixed, fences) = repair_all(&m, &det);
        assert!(fences >= 1);
        for engine in [EngineKind::Pht, EngineKind::Stl, EngineKind::Psf] {
            assert!(
                det.analyze_module(&fixed, engine).is_clean(),
                "{engine:?} still finds leaks after repair_all"
            );
        }
    }

    #[test]
    fn clean_module_needs_no_fences() {
        let m = lcm_minic::compile("int A[4]; int t; void f() { t = A[0]; }").unwrap();
        let det = Detector::new(DetectorConfig::default());
        let (_, fences) = repair(&m, &det, EngineKind::Pht);
        assert_eq!(fences, 0);
    }
}
