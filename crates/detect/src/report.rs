//! Detection results.

use std::time::Duration;

use lcm_aeg::{EventId, Saeg};
use lcm_core::govern::AnalysisError;
use lcm_core::speculation::SpeculationPrimitive;
use lcm_core::taxonomy::TransmitterClass;
use lcm_ir::{BlockId, InstId};

/// One detected transmitter instance (a witness of leakage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Function the leak lives in.
    pub function: String,
    /// The transmitting event.
    pub transmitter: EventId,
    /// IR instruction of the transmitter.
    pub transmitter_inst: InstId,
    /// Taxonomy class (Table 1).
    pub class: TransmitterClass,
    /// Whether the transmitter executes transiently in the witness.
    pub transient_transmitter: bool,
    /// The access instruction (DT/CT/UDT/UCT).
    pub access: Option<EventId>,
    /// Whether the access executes transiently (restricts leakage scope
    /// when false, §6.1).
    pub access_transient: bool,
    /// The index instruction (UDT/UCT).
    pub index: Option<EventId>,
    /// The speculation primitive exploited.
    pub primitive: SpeculationPrimitive,
    /// PHT: the mispredicted branch's block.
    pub branch: Option<BlockId>,
    /// STL: the bypassed store.
    pub bypassed_store: Option<EventId>,
    /// Extension: `true` for speculative-interference findings, where the
    /// receiver is a *committed* load whose line the transient transmitter
    /// warmed (§6.1's "new attack variant").
    pub interference: bool,
    /// Witness seed: blocks the witnessing architectural path must
    /// execute, in chain order. The full path is expanded on demand by
    /// [`Finding::witness_path`], so findings stay compact even at the
    /// 150k-findings scale of the synthetic-library rows.
    pub witness_blocks: Vec<BlockId>,
    /// Witness seed: the constrained branch and its architectural
    /// direction (`true` = then-target), if the primitive is a branch.
    pub witness_dir: Option<(BlockId, bool)>,
}

impl Finding {
    /// Materializes the witnessing architectural path (executed blocks,
    /// entry to return) from the stored seed.
    pub fn witness_path(&self, saeg: &Saeg) -> Vec<BlockId> {
        saeg.arch_witness_path(&self.witness_blocks, self.witness_dir)
    }

    /// Deduplication key: one finding per distinct chain
    /// (transmitter, class, primitive, access, index, interference).
    #[allow(clippy::type_complexity)]
    pub fn key(
        &self,
    ) -> (
        u32,
        TransmitterClass,
        SpeculationPrimitive,
        Option<EventId>,
        Option<EventId>,
        bool,
    ) {
        (
            self.transmitter_inst.0,
            self.class,
            self.primitive,
            self.access,
            self.index,
            self.interference,
        )
    }
}

/// Where one function's analysis time went (the profile future perf
/// work aims at).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// A-CFG construction (IR → acyclic CFG).
    pub acfg_build: Duration,
    /// S-AEG construction over the A-CFG.
    pub saeg_build: Duration,
    /// CNF encoding of path feasibility (Fig. 7 edge formulas).
    pub encode: Duration,
    /// Time inside the SAT solver.
    pub solve: Duration,
    /// Engine chain enumeration and classification (everything in the
    /// engines that is not solving).
    pub classify: Duration,
    /// Baseline-tool (haunted re-execution checker) time *not*
    /// attributed to one of the three `bh_*` sub-phases below: config
    /// setup, per-function merge, report assembly. The full baseline
    /// cost of a bench row is `baseline + bh_enumerate + bh_execute +
    /// bh_witness`.
    pub baseline: Duration,
    /// Baseline sub-phase: architectural path enumeration (the
    /// 2^branches walk into the flat path arena).
    pub bh_enumerate: Duration,
    /// Baseline sub-phase: relational execution — per-path transient
    /// sub-path forking and candidate collection.
    pub bh_execute: Duration,
    /// Baseline sub-phase: witness checking — confirming deduplicated
    /// candidates via taint/feeding-load queries.
    pub bh_witness: Duration,
    /// Time spent in the incremental result cache: fingerprinting,
    /// lookup, and (on a miss) record insertion. On a warm run this is
    /// the *only* per-function phase with time in it — without this
    /// bucket a warm breakdown would not sum to wall clock.
    pub cache: Duration,
    /// Wall-clock remainder not attributed to any tracked phase
    /// (module compilation, corpus generation, aggregation). Set by
    /// [`PhaseTimings::fill_other`] so the breakdown sums to wall clock.
    pub other: Duration,
    /// Feasibility questions that reached the memo/solver (incl. hits).
    pub sat_queries: u64,
    /// Questions answered from the feasibility memo.
    pub memo_hits: u64,
    /// Questions answered by the block-reachability pre-screen without
    /// reaching the memo or solver.
    pub queries_avoided: u64,
    /// Engine-level candidate checks skipped by hoisted pre-screens.
    pub prefilter_hits: u64,
    /// Solver calls served by a persistent solver that had already
    /// served an earlier call (always 0 with incremental SAT disabled).
    pub solver_reuses: u64,
    /// Learnt clauses retained in persistent solvers across calls.
    pub clauses_retained: u64,
    /// Functions whose entire engine run was short-circuited by a
    /// content-addressed cache hit (the strongest form of avoidance:
    /// zero queries, zero encoding, zero graph builds).
    pub cache_hits: u64,
}

impl PhaseTimings {
    /// Accumulates another function's breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.acfg_build += other.acfg_build;
        self.saeg_build += other.saeg_build;
        self.encode += other.encode;
        self.solve += other.solve;
        self.classify += other.classify;
        self.baseline += other.baseline;
        self.bh_enumerate += other.bh_enumerate;
        self.bh_execute += other.bh_execute;
        self.bh_witness += other.bh_witness;
        self.cache += other.cache;
        self.other += other.other;
        self.sat_queries += other.sat_queries;
        self.memo_hits += other.memo_hits;
        self.queries_avoided += other.queries_avoided;
        self.prefilter_hits += other.prefilter_hits;
        self.solver_reuses += other.solver_reuses;
        self.clauses_retained += other.clauses_retained;
        self.cache_hits += other.cache_hits;
    }

    /// Sum of every tracked phase.
    pub fn tracked(&self) -> Duration {
        self.acfg_build
            + self.saeg_build
            + self.encode
            + self.solve
            + self.classify
            + self.baseline
            + self.bh_enumerate
            + self.bh_execute
            + self.bh_witness
            + self.cache
    }

    /// Sets `other` to whatever part of `wall` the tracked phases do not
    /// account for, so the rendered breakdown sums to wall clock.
    pub fn fill_other(&mut self, wall: Duration) {
        self.other = wall.saturating_sub(self.tracked());
    }

    /// One-line human-readable breakdown for the bench binaries.
    pub fn render(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "acfg {:.1}ms | saeg {:.1}ms | encode {:.1}ms | solve {:.1}ms | classify {:.1}ms | baseline {:.1}ms (enum {:.1}ms, exec {:.1}ms, witness {:.1}ms) | cache {:.1}ms | other {:.1}ms | {} SAT queries ({} memo hits, {} avoided, {} prefilter hits, {} solver reuses, {} clauses retained, {} cache hits)",
            ms(self.acfg_build),
            ms(self.saeg_build),
            ms(self.encode),
            ms(self.solve),
            ms(self.classify),
            ms(self.baseline),
            ms(self.bh_enumerate),
            ms(self.bh_execute),
            ms(self.bh_witness),
            ms(self.cache),
            ms(self.other),
            self.sat_queries,
            self.memo_hits,
            self.queries_avoided,
            self.prefilter_hits,
            self.solver_reuses,
            self.clauses_retained,
            self.cache_hits,
        )
    }
}

/// Whether a function's analysis ran to completion.
///
/// `Degraded` findings are *partial*: whatever the engines established
/// before the governor tripped (or the worker panicked) is kept, but
/// absence of a finding proves nothing. Completed functions are
/// byte-identical to an ungoverned run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FunctionStatus {
    /// Analysis ran to completion; findings are exhaustive.
    #[default]
    Completed,
    /// Analysis was cut short; findings are a lower bound.
    Degraded(AnalysisError),
}

impl FunctionStatus {
    /// `true` when analysis ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, FunctionStatus::Completed)
    }

    /// The degradation error, if any.
    pub fn error(&self) -> Option<&AnalysisError> {
        match self {
            FunctionStatus::Completed => None,
            FunctionStatus::Degraded(e) => Some(e),
        }
    }
}

/// How the incremental result cache participated in producing a
/// [`FunctionReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheStatus {
    /// The report came straight from the content-addressed store; no
    /// engine ran.
    Hit,
    /// The store was consulted, missed, and the fresh result was
    /// inserted for next time.
    Miss,
    /// The cache was not in play: no store configured, or the result
    /// was not cacheable (degraded analyses are never stored).
    #[default]
    Bypass,
}

impl CacheStatus {
    /// Lower-case wire/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// Per-function analysis result.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Findings, most severe first.
    pub transmitters: Vec<Finding>,
    /// S-AEG node count (Fig. 8's size axis).
    pub saeg_size: usize,
    /// Serial analysis runtime.
    pub runtime: Duration,
    /// Phase breakdown of `runtime`.
    pub timings: PhaseTimings,
    /// Completed, or degraded with the reason analysis was cut short.
    pub status: FunctionStatus,
    /// Whether this report was served from, stored into, or produced
    /// without the incremental cache.
    pub cache: CacheStatus,
}

impl FunctionReport {
    /// An empty report for a function whose analysis was cut short
    /// before producing anything.
    pub fn degraded(name: String, error: AnalysisError) -> FunctionReport {
        FunctionReport {
            name,
            transmitters: Vec::new(),
            saeg_size: 0,
            runtime: Duration::ZERO,
            timings: PhaseTimings::default(),
            status: FunctionStatus::Degraded(error),
            cache: CacheStatus::Bypass,
        }
    }

    /// Count of findings at exactly the given class.
    pub fn count(&self, class: TransmitterClass) -> usize {
        self.transmitters
            .iter()
            .filter(|f| f.class == class)
            .count()
    }

    /// `true` if no leakage was found.
    pub fn is_clean(&self) -> bool {
        self.transmitters.is_empty()
    }
}

/// Whole-module analysis result.
#[derive(Debug, Clone, Default)]
pub struct ModuleReport {
    /// Per-function reports, in module order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Total findings of a class across functions.
    pub fn count(&self, class: TransmitterClass) -> usize {
        self.functions.iter().map(|f| f.count(class)).sum()
    }

    /// Total serial runtime.
    pub fn total_runtime(&self) -> Duration {
        self.functions.iter().map(|f| f.runtime).sum()
    }

    /// Module-wide phase breakdown (sum over functions).
    pub fn timings(&self) -> PhaseTimings {
        let mut t = PhaseTimings::default();
        for f in &self.functions {
            t.merge(&f.timings);
        }
        t
    }

    /// All findings flattened.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.functions.iter().flat_map(|f| f.transmitters.iter())
    }

    /// `true` if no function leaks.
    pub fn is_clean(&self) -> bool {
        self.functions.iter().all(FunctionReport::is_clean)
    }

    /// The functions whose analysis was cut short.
    pub fn degraded(&self) -> impl Iterator<Item = &FunctionReport> {
        self.functions.iter().filter(|f| !f.status.is_completed())
    }

    /// How many functions were degraded.
    pub fn degraded_count(&self) -> usize {
        self.degraded().count()
    }

    /// `true` when every function ran to completion (findings are
    /// exhaustive module-wide).
    pub fn all_completed(&self) -> bool {
        self.functions.iter().all(|f| f.status.is_completed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(class: TransmitterClass) -> Finding {
        Finding {
            function: "f".into(),
            transmitter: EventId(0),
            transmitter_inst: InstId(0),
            class,
            transient_transmitter: true,
            access: None,
            access_transient: false,
            index: None,
            primitive: SpeculationPrimitive::ConditionalBranch,
            branch: None,
            bypassed_store: None,
            interference: false,
            witness_blocks: vec![],
            witness_dir: None,
        }
    }

    #[test]
    fn counting_by_class() {
        let r = FunctionReport {
            name: "f".into(),
            transmitters: vec![
                dummy(TransmitterClass::Data),
                dummy(TransmitterClass::Data),
                dummy(TransmitterClass::UniversalData),
            ],
            saeg_size: 3,
            runtime: Duration::ZERO,
            timings: PhaseTimings::default(),
            status: FunctionStatus::Completed,
            cache: CacheStatus::Bypass,
        };
        assert_eq!(r.count(TransmitterClass::Data), 2);
        assert_eq!(r.count(TransmitterClass::UniversalData), 1);
        assert!(!r.is_clean());
        let m = ModuleReport { functions: vec![r] };
        assert_eq!(m.count(TransmitterClass::Data), 2);
        assert!(!m.is_clean());
        assert!(m.all_completed());
        assert_eq!(m.degraded_count(), 0);
    }

    #[test]
    fn degraded_reports_are_tracked() {
        let ok = FunctionReport {
            name: "good".into(),
            transmitters: vec![],
            saeg_size: 1,
            runtime: Duration::ZERO,
            timings: PhaseTimings::default(),
            status: FunctionStatus::Completed,
            cache: CacheStatus::Bypass,
        };
        let bad = FunctionReport::degraded("bad".into(), AnalysisError::SolverAbort);
        assert!(bad.status.error().is_some());
        let m = ModuleReport {
            functions: vec![ok, bad],
        };
        assert!(!m.all_completed());
        assert_eq!(m.degraded_count(), 1);
        assert_eq!(m.degraded().next().unwrap().name, "bad");
    }

    /// Builds a `PhaseTimings` whose every field is a distinct non-zero
    /// value derived from `seed`, via exhaustive struct-literal syntax:
    /// adding a field to the struct breaks this function's compile, so
    /// `merge`/`fill_other` can't silently miss it.
    fn distinct(seed: u64) -> PhaseTimings {
        let d = |i: u64| Duration::from_millis(seed * 100 + i);
        PhaseTimings {
            acfg_build: d(1),
            saeg_build: d(2),
            encode: d(3),
            solve: d(4),
            classify: d(5),
            baseline: d(6),
            bh_enumerate: d(14),
            bh_execute: d(15),
            bh_witness: d(16),
            cache: d(7),
            other: d(8),
            sat_queries: seed * 100 + 9,
            memo_hits: seed * 100 + 10,
            queries_avoided: seed * 100 + 11,
            prefilter_hits: seed * 100 + 12,
            solver_reuses: seed * 100 + 17,
            clauses_retained: seed * 100 + 18,
            cache_hits: seed * 100 + 13,
        }
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut acc = distinct(1);
        acc.merge(&distinct(2));
        // Destructure WITHOUT `..`: a new field must be added here (and,
        // by the same token, to `merge` itself) or this fails to build.
        let PhaseTimings {
            acfg_build,
            saeg_build,
            encode,
            solve,
            classify,
            baseline,
            bh_enumerate,
            bh_execute,
            bh_witness,
            cache,
            other,
            sat_queries,
            memo_hits,
            queries_avoided,
            prefilter_hits,
            solver_reuses,
            clauses_retained,
            cache_hits,
        } = acc;
        let ms = |x: u64| Duration::from_millis(x);
        assert_eq!(acfg_build, ms(101 + 201));
        assert_eq!(saeg_build, ms(102 + 202));
        assert_eq!(encode, ms(103 + 203));
        assert_eq!(solve, ms(104 + 204));
        assert_eq!(classify, ms(105 + 205));
        assert_eq!(baseline, ms(106 + 206));
        assert_eq!(bh_enumerate, ms(114 + 214));
        assert_eq!(bh_execute, ms(115 + 215));
        assert_eq!(bh_witness, ms(116 + 216));
        assert_eq!(cache, ms(107 + 207));
        assert_eq!(other, ms(108 + 208));
        assert_eq!(sat_queries, 109 + 209);
        assert_eq!(memo_hits, 110 + 210);
        assert_eq!(queries_avoided, 111 + 211);
        assert_eq!(prefilter_hits, 112 + 212);
        assert_eq!(solver_reuses, 117 + 217);
        assert_eq!(clauses_retained, 118 + 218);
        assert_eq!(cache_hits, 113 + 213);
    }

    #[test]
    fn fill_other_covers_every_duration_phase() {
        let mut t = distinct(1);
        t.other = Duration::ZERO;
        // tracked() must include every Duration field except `other`.
        let tracked =
            Duration::from_millis(101 + 102 + 103 + 104 + 105 + 106 + 114 + 115 + 116 + 107);
        assert_eq!(t.tracked(), tracked);
        let wall = tracked + Duration::from_millis(42);
        t.fill_other(wall);
        assert_eq!(t.other, Duration::from_millis(42));
        // A wall clock shorter than the tracked sum (timer skew across
        // threads) saturates to zero instead of panicking.
        t.fill_other(tracked - Duration::from_millis(1));
        assert_eq!(t.other, Duration::ZERO);
        // And merge + fill_other round-trip: after filling, tracked +
        // other == wall exactly.
        t.fill_other(wall);
        assert_eq!(t.tracked() + t.other, wall);
    }
}
