//! Detection results.

use std::time::Duration;

use lcm_aeg::EventId;
use lcm_core::speculation::SpeculationPrimitive;
use lcm_core::taxonomy::TransmitterClass;
use lcm_ir::{BlockId, InstId};

/// One detected transmitter instance (a witness of leakage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Function the leak lives in.
    pub function: String,
    /// The transmitting event.
    pub transmitter: EventId,
    /// IR instruction of the transmitter.
    pub transmitter_inst: InstId,
    /// Taxonomy class (Table 1).
    pub class: TransmitterClass,
    /// Whether the transmitter executes transiently in the witness.
    pub transient_transmitter: bool,
    /// The access instruction (DT/CT/UDT/UCT).
    pub access: Option<EventId>,
    /// Whether the access executes transiently (restricts leakage scope
    /// when false, §6.1).
    pub access_transient: bool,
    /// The index instruction (UDT/UCT).
    pub index: Option<EventId>,
    /// The speculation primitive exploited.
    pub primitive: SpeculationPrimitive,
    /// PHT: the mispredicted branch's block.
    pub branch: Option<BlockId>,
    /// STL: the bypassed store.
    pub bypassed_store: Option<EventId>,
    /// Extension: `true` for speculative-interference findings, where the
    /// receiver is a *committed* load whose line the transient transmitter
    /// warmed (§6.1's "new attack variant").
    pub interference: bool,
    /// Blocks of the witnessing architectural path.
    pub witness_path: Vec<BlockId>,
}

impl Finding {
    /// Deduplication key: one finding per distinct chain
    /// (transmitter, class, primitive, access, index, interference).
    #[allow(clippy::type_complexity)]
    pub fn key(
        &self,
    ) -> (
        u32,
        TransmitterClass,
        SpeculationPrimitive,
        Option<EventId>,
        Option<EventId>,
        bool,
    ) {
        (
            self.transmitter_inst.0,
            self.class,
            self.primitive,
            self.access,
            self.index,
            self.interference,
        )
    }
}

/// Where one function's analysis time went (the profile future perf
/// work aims at).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// A-CFG construction (IR → acyclic CFG).
    pub acfg_build: Duration,
    /// S-AEG construction over the A-CFG.
    pub saeg_build: Duration,
    /// CNF encoding of path feasibility (Fig. 7 edge formulas).
    pub encode: Duration,
    /// Time inside the SAT solver.
    pub solve: Duration,
    /// Engine chain enumeration and classification (everything in the
    /// engines that is not solving).
    pub classify: Duration,
    /// Feasibility questions asked (including memo hits).
    pub sat_queries: u64,
    /// Questions answered from the feasibility memo.
    pub memo_hits: u64,
}

impl PhaseTimings {
    /// Accumulates another function's breakdown into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.acfg_build += other.acfg_build;
        self.saeg_build += other.saeg_build;
        self.encode += other.encode;
        self.solve += other.solve;
        self.classify += other.classify;
        self.sat_queries += other.sat_queries;
        self.memo_hits += other.memo_hits;
    }

    /// One-line human-readable breakdown for the bench binaries.
    pub fn render(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "acfg {:.1}ms | saeg {:.1}ms | encode {:.1}ms | solve {:.1}ms | classify {:.1}ms | {} SAT queries ({} memo hits)",
            ms(self.acfg_build),
            ms(self.saeg_build),
            ms(self.encode),
            ms(self.solve),
            ms(self.classify),
            self.sat_queries,
            self.memo_hits,
        )
    }
}

/// Per-function analysis result.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Findings, most severe first.
    pub transmitters: Vec<Finding>,
    /// S-AEG node count (Fig. 8's size axis).
    pub saeg_size: usize,
    /// Serial analysis runtime.
    pub runtime: Duration,
    /// Phase breakdown of `runtime`.
    pub timings: PhaseTimings,
}

impl FunctionReport {
    /// Count of findings at exactly the given class.
    pub fn count(&self, class: TransmitterClass) -> usize {
        self.transmitters
            .iter()
            .filter(|f| f.class == class)
            .count()
    }

    /// `true` if no leakage was found.
    pub fn is_clean(&self) -> bool {
        self.transmitters.is_empty()
    }
}

/// Whole-module analysis result.
#[derive(Debug, Clone, Default)]
pub struct ModuleReport {
    /// Per-function reports, in module order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Total findings of a class across functions.
    pub fn count(&self, class: TransmitterClass) -> usize {
        self.functions.iter().map(|f| f.count(class)).sum()
    }

    /// Total serial runtime.
    pub fn total_runtime(&self) -> Duration {
        self.functions.iter().map(|f| f.runtime).sum()
    }

    /// Module-wide phase breakdown (sum over functions).
    pub fn timings(&self) -> PhaseTimings {
        let mut t = PhaseTimings::default();
        for f in &self.functions {
            t.merge(&f.timings);
        }
        t
    }

    /// All findings flattened.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.functions.iter().flat_map(|f| f.transmitters.iter())
    }

    /// `true` if no function leaks.
    pub fn is_clean(&self) -> bool {
        self.functions.iter().all(FunctionReport::is_clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(class: TransmitterClass) -> Finding {
        Finding {
            function: "f".into(),
            transmitter: EventId(0),
            transmitter_inst: InstId(0),
            class,
            transient_transmitter: true,
            access: None,
            access_transient: false,
            index: None,
            primitive: SpeculationPrimitive::ConditionalBranch,
            branch: None,
            bypassed_store: None,
            interference: false,
            witness_path: vec![],
        }
    }

    #[test]
    fn counting_by_class() {
        let r = FunctionReport {
            name: "f".into(),
            transmitters: vec![
                dummy(TransmitterClass::Data),
                dummy(TransmitterClass::Data),
                dummy(TransmitterClass::UniversalData),
            ],
            saeg_size: 3,
            runtime: Duration::ZERO,
            timings: PhaseTimings::default(),
        };
        assert_eq!(r.count(TransmitterClass::Data), 2);
        assert_eq!(r.count(TransmitterClass::UniversalData), 1);
        assert!(!r.is_clean());
        let m = ModuleReport { functions: vec![r] };
        assert_eq!(m.count(TransmitterClass::Data), 2);
        assert!(!m.is_clean());
    }
}
