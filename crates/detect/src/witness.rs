//! Witness rendering: Clou "outputs a list of transmitters and a set of
//! consistent candidate executions (in graph form) which give witness to
//! detected software vulnerabilities" (§5). This module renders a
//! [`Finding`] over its S-AEG as Graphviz DOT, highlighting the chain
//! (index → access → transmitter), the speculation primitive, and the
//! witnessing architectural path.

use std::fmt::Write as _;

use lcm_aeg::Saeg;

use crate::report::Finding;

/// Renders a finding as a DOT graph over the S-AEG events on the witness
/// path and in the transmitter chain.
pub fn witness_dot(saeg: &Saeg, finding: &Finding) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"witness_{}\" {{", finding.function);
    let _ = writeln!(s, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];");
    let _ = writeln!(
        s,
        "  label=\"{} {} via {}\"; labelloc=t;",
        finding.function, finding.class, finding.primitive
    );

    // Materialize the witness path from the finding's compact seed; this
    // is the one place findings pay for a path.
    let witness_path = finding.witness_path(saeg);
    let on_path = |b: lcm_ir::BlockId| witness_path.contains(&b);
    let chain: Vec<_> = [finding.index, finding.access, Some(finding.transmitter)]
        .into_iter()
        .flatten()
        .collect();

    for e in &saeg.events {
        let relevant = on_path(e.block) || chain.contains(&e.id);
        if !relevant {
            continue;
        }
        let role = if Some(e.id) == Some(finding.transmitter) {
            ", color=red, penwidth=2"
        } else if finding.access == Some(e.id) {
            ", color=orange, penwidth=2"
        } else if finding.index == Some(e.id) {
            ", color=blue, penwidth=2"
        } else if finding.bypassed_store == Some(e.id) {
            ", color=purple, style=dashed"
        } else {
            ""
        };
        let label =
            format!("{}: {:?} {:?}", e.pos, e.kind, saeg.acfg.inst(e.inst)).replace('"', "'");
        let _ = writeln!(s, "  e{} [label=\"{}\"{}];", e.id.0, label, role);
    }
    // Chain edges.
    for pair in chain.windows(2) {
        let _ = writeln!(
            s,
            "  e{} -> e{} [label=\"addr\", color=red, penwidth=2];",
            pair[0].0, pair[1].0
        );
    }
    if let Some(store) = finding.bypassed_store {
        if let Some(first) = chain.first() {
            let _ = writeln!(
                s,
                "  e{} -> e{} [label=\"bypassed\", color=purple, style=dashed];",
                store.0, first.0
            );
        }
    }
    if let Some(br) = finding.branch {
        let _ = writeln!(
            s,
            "  br [shape=diamond, label=\"mispredicted branch @bb{}\", color=red];",
            br.0
        );
        let _ = writeln!(
            s,
            "  br -> e{} [style=dotted, label=\"window\"];",
            finding.transmitter.0
        );
    }
    s.push_str("}\n");
    s
}

/// One-line human-readable description of a finding.
pub fn describe(saeg: &Saeg, finding: &Finding) -> String {
    let ev = |id: lcm_aeg::EventId| format!("%{}@{}", saeg.events[id.0].inst.0, id.0);
    let mut s = format!(
        "{}: {} transmitter {} ({}via {})",
        finding.function,
        finding.class,
        ev(finding.transmitter),
        if finding.transient_transmitter {
            "transient, "
        } else {
            ""
        },
        finding.primitive
    );
    if let Some(a) = finding.access {
        let _ = write!(
            s,
            ", access {}{}",
            ev(a),
            if finding.access_transient {
                " (transient)"
            } else {
                " (committed)"
            }
        );
    }
    if let Some(i) = finding.index {
        let _ = write!(s, ", index {}", ev(i));
    }
    if let Some(b) = finding.bypassed_store {
        let _ = write!(s, ", bypassing store {}", ev(b));
    }
    if finding.interference {
        s.push_str(" [speculative interference]");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, DetectorConfig, EngineKind};
    use lcm_core::speculation::SpeculationConfig;

    const SPECTRE_V1: &str = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }"#;

    #[test]
    fn witness_dot_highlights_chain_and_branch() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let report = det.analyze_module(&m, EngineKind::Pht);
        let udt = report
            .findings()
            .find(|f| f.class == lcm_core::taxonomy::TransmitterClass::UniversalData)
            .unwrap();
        let saeg = Saeg::build(&m, "victim", SpeculationConfig::default()).unwrap();
        let dot = witness_dot(&saeg, udt);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("color=red"), "transmitter highlighted");
        assert!(dot.contains("color=blue"), "index highlighted");
        assert!(dot.contains("mispredicted branch"));
    }

    #[test]
    fn describe_mentions_all_chain_members() {
        let m = lcm_minic::compile(SPECTRE_V1).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let report = det.analyze_module(&m, EngineKind::Pht);
        let udt = report
            .findings()
            .find(|f| f.class == lcm_core::taxonomy::TransmitterClass::UniversalData)
            .unwrap();
        let saeg = Saeg::build(&m, "victim", SpeculationConfig::default()).unwrap();
        let d = describe(&saeg, udt);
        assert!(d.contains("UDT"));
        assert!(d.contains("access"));
        assert!(d.contains("index"));
        assert!(d.contains("transient"));
    }

    #[test]
    fn stl_witness_shows_bypassed_store() {
        let src = r#"
            int pub_ary[256]; int sec[16]; int tmp;
            void case_1(int idx) {
                int ridx = idx & 15;
                sec[ridx] = 0;
                tmp &= pub_ary[sec[ridx]];
            }"#;
        let m = lcm_minic::compile(src).unwrap();
        let det = Detector::new(DetectorConfig::default());
        let report = det.analyze_module(&m, EngineKind::Stl);
        let f = report.findings().next().unwrap();
        let saeg = Saeg::build(&m, "case_1", SpeculationConfig::default()).unwrap();
        let dot = witness_dot(&saeg, f);
        assert!(dot.contains("bypassed"));
        assert!(describe(&saeg, f).contains("bypassing store"));
    }
}
