//! `lcm-fleet`: a supervised multi-process analysis worker fleet.
//!
//! The in-process analysis pipeline already degrades gracefully when a
//! worker *thread* panics or blows a budget (`lcm_core::par`,
//! `ResourceGovernor`), but a thread cannot survive a segfault, an
//! OOM-kill, or a wedged solver that never polls its governor. This
//! crate moves that blast radius across a process boundary: a
//! supervisor ([`Fleet`]) shards a module's functions over child
//! *processes* by content fingerprint, speaks a length-delimited binary
//! protocol ([`proto`]) over their stdin/stdout pipes, and enforces
//! per-worker health — heartbeats, per-task deadlines, crash/hang/
//! stuck-output detection, restart with the workspace's deterministic
//! capped-exponential [`lcm_core::backoff_delay`] schedule, and
//! restart-storm circuit breakers that degrade instead of spinning
//! (DESIGN.md §6h).
//!
//! The standing invariant of the whole resilience layer extends to the
//! fleet: rendered results are **byte-identical** to an in-process run
//! at every worker count, under every armed `fleet.*` fault. Findings
//! cross the pipe through the store's own codec, the supervisor mirrors
//! the store's cache discipline exactly (hits served supervisor-side,
//! completed results inserted, degraded results never cached), and
//! functions are reassembled in module order.
//!
//! Worker identity is solved by re-execution: the supervisor spawns
//! *its own executable* with the [`worker::WORKER_ENV`] marker set, and
//! every host binary calls [`maybe_run_worker`] first thing in `main`.
//! `lcm-cli` additionally exposes the loop as the hidden `worker`
//! subcommand, which is also what the integration tests point
//! `worker_cmd` at.
//!
//! Observability crosses the process boundary too (DESIGN.md §6j):
//! result frames carry the worker's drained span buffer and metrics
//! delta, the supervisor re-bases span timestamps against a
//! hello-exchanged clock offset and merges everything into one
//! multi-process Chrome trace, worker heartbeats mirror a black-box
//! breadcrumb ring for crash forensics, and every supervision decision
//! (kill, restart, steal, redeliver) lands in `lcm_fleet_*` counters
//! and an optional append-only JSONL event log
//! ([`FleetConfig::events_out`]).

pub mod proto;
pub mod supervisor;
pub mod worker;

pub use supervisor::{Fleet, FleetConfig, SlotHealth};
pub use worker::{maybe_run_worker, worker_main, WORKER_ENV};
