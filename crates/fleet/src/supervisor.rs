//! The supervisor: spawns, shards, watches, restarts, and reaps.
//!
//! One [`Fleet`] owns a pool of worker child processes. A module run
//! ([`Fleet::analyze_module`]) shards the module's cache-missing
//! functions across the pool by their content fingerprint (the same
//! [`lcm_store::fp::clou_fingerprint`] that keys the result store), so
//! the same function lands on the same worker slot run after run.
//! Idle workers steal from the longest remaining queue, so one straggler
//! function never serializes the tail.
//!
//! Per-worker health, in escalating order of suspicion:
//!
//! * **crash** — the stdout reader sees EOF or a torn frame while a
//!   task is in flight (covers SIGKILL, abort, nonzero exit);
//! * **stuck output** — a busy worker that stops heartbeating past
//!   [`FleetConfig::heartbeat_grace`];
//! * **hang** — a busy worker that beats but blows
//!   [`FleetConfig::task_deadline`] (the process-level layer above the
//!   in-engine `ResourceGovernor` deadline).
//!
//! Every detection kills the incarnation and restarts the slot after
//! the shared deterministic [`lcm_core::backoff_delay`] schedule; the
//! orphaned task is redistributed to survivors. The circuit breakers:
//! a task that kills its worker [`FleetConfig::max_task_attempts`]
//! times is reported `Degraded` (partial result kept as a lower bound,
//! never cached) instead of being retried forever, and a slot restarted
//! past [`FleetConfig::max_worker_restarts`] *within one module run* is
//! retired for that run. A fleet whose every slot is retired degrades
//! the remaining work and returns — a restart storm ends the run, never
//! the process — and the next run starts with a fresh budget.
//!
//! Injected `fleet.*` faults are stripped from a task's plan on
//! redelivery (unless [`FleetConfig::refire_faults_on_retry`] keeps
//! them armed, which the restart-storm tests use), so an armed fault
//! fires once and the run converges to the in-process result —
//! byte-identical rendered reports at every worker count, under every
//! armed fault.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lcm_core::backoff_delay;
use lcm_core::fault::{site, FaultPlan};
use lcm_core::govern::AnalysisError;
use lcm_core::jsonw::Json;
use lcm_detect::{CacheStatus, DetectorConfig, EngineKind, FunctionReport, ModuleReport};
use lcm_ir::Module;
use lcm_obs::trace;
use lcm_store::{clou_fingerprint, Store};

use crate::proto::{self, Crumb, FromWorker, Task, Telemetry, ToWorker};
use crate::worker::WORKER_ENV;

/// The fault sites the supervisor disarms on a task's redelivery.
const FLEET_SITES: &[&str] = &[
    site::FLEET_WORKER_CRASH,
    site::FLEET_WORKER_HANG,
    site::FLEET_TASK_TORN,
];

/// Supervision knobs. `new(workers)` gives production defaults; tests
/// shrink the time knobs to keep fault campaigns fast.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker process count (min 1).
    pub workers: usize,
    /// Worker command line. Default: this executable with the
    /// [`WORKER_ENV`] marker — any host binary that calls
    /// `maybe_run_worker` first thing in `main` can be its own worker.
    pub worker_cmd: Vec<String>,
    /// Process-level per-task deadline, layered above the in-engine
    /// governor's wall-clock budget: a worker that blows it is killed
    /// even if the governor is wedged or the engine never polls.
    pub task_deadline: Duration,
    /// How long a *busy* worker may go without a heartbeat before it is
    /// declared stuck and killed.
    pub heartbeat_grace: Duration,
    /// How many workers one task may kill before it is reported
    /// `Degraded` instead of redelivered (the per-function circuit
    /// breaker).
    pub max_task_attempts: usize,
    /// How many times one slot may be restarted within one module run
    /// before it is retired for that run (the per-slot circuit breaker;
    /// all slots retired ends the run). The budget resets every run.
    pub max_worker_restarts: usize,
    /// Keep `fleet.*` fault specs armed on redelivered tasks. Off by
    /// default so injected process faults fire once and the run
    /// converges; the restart-storm tests switch it on to drive the
    /// circuit breaker.
    pub refire_faults_on_retry: bool,
    /// Append-only JSONL event log: one object per supervision event
    /// (worker_exit forensics, restart, steal, redeliver, degraded).
    /// `None` disables the log.
    pub events_out: Option<PathBuf>,
    /// Whether workers record spans and ship them back. `None` (the
    /// default) follows the supervisor's own tracer at dispatch time —
    /// a `--trace-out` run traces its workers, an untraced run does
    /// not. Tests pin it explicitly.
    pub trace_workers: Option<bool>,
}

impl FleetConfig {
    /// Production defaults for `workers` worker processes.
    pub fn new(workers: usize) -> FleetConfig {
        let exe = std::env::current_exe()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| "lcm-cli".into());
        FleetConfig {
            workers: workers.max(1),
            worker_cmd: vec![exe],
            task_deadline: Duration::from_secs(600),
            heartbeat_grace: Duration::from_secs(10),
            max_task_attempts: 2,
            max_worker_restarts: 8,
            refire_faults_on_retry: false,
            events_out: None,
            trace_workers: None,
        }
    }
}

/// What a reader thread learned from one worker incarnation.
enum Event {
    /// First frame: the worker's pid and its trace-clock sample, from
    /// which the supervisor derives the timestamp re-basing offset.
    Hello {
        now_us: u64,
    },
    /// Liveness beat carrying the worker's breadcrumb ring.
    Beat {
        crumbs: Vec<Crumb>,
    },
    Result(proto::TaskResult),
    /// Final telemetry flush of a cleanly exiting worker.
    Drain(Telemetry),
    /// Stream ended; `reason` distinguishes a clean EOF from a torn
    /// frame or undecodable garbage (all are the death of that
    /// incarnation, but forensics record which).
    Gone {
        reason: &'static str,
    },
}

/// Lifetime health counters for one worker slot, as reported by
/// [`Fleet::health`] (the daemon's `stats` reply and the JSONL event
/// log read from the same numbers). Unlike the per-run restart budget,
/// these never reset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotHealth {
    /// Slot index.
    pub slot: usize,
    /// Current incarnation's OS pid (0 before the first spawn).
    pub pid: u32,
    /// Current incarnation id.
    pub incarnation: u64,
    /// Incarnations spawned beyond the first (i.e. restarts).
    pub restarts: u64,
    /// Tasks this slot executed that it stole from a peer's queue.
    pub steals: u64,
    /// Incarnations the supervisor killed, by any reason.
    pub kills: u64,
    /// Tasks redelivered away from this slot after a failure.
    pub redeliveries: u64,
    /// Results received.
    pub tasks: u64,
    /// Queue depth at the last dispatch sweep (0 when idle).
    pub queue_depth: u64,
    /// Whether the slot is retired for the current run.
    pub retired: bool,
    /// Whether a task is in flight right now.
    pub busy: bool,
    /// The last phase the worker's breadcrumb ring reported, e.g.
    /// `"analyzing victim_a"`.
    pub last_phase: Option<String>,
}

/// One worker slot: at most one live child process at a time, restarted
/// in place across incarnations.
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Monotonic incarnation id; events from dead incarnations are
    /// discarded by comparing against this.
    incarnation: u64,
    /// Current incarnation's OS pid (0 = never spawned).
    pid: u32,
    /// When the current incarnation was spawned (uptime for forensics).
    spawned_at: Instant,
    /// `supervisor_clock − worker_clock` at hello receipt, µs: added to
    /// every shipped span timestamp to land it on the supervisor's
    /// trace clock.
    epoch_offset_us: i64,
    /// Supervisor-side mirror of the worker's breadcrumb ring (updated
    /// on every beat; the crash postmortem reads it).
    crumbs: Vec<Crumb>,
    /// Which module id this incarnation has been shipped.
    sent_module: Option<u64>,
    /// The in-flight task (index into the run's task table) and its
    /// dispatch time.
    busy: Option<(usize, Instant)>,
    last_beat: Instant,
    /// Consecutive failures since the last successful result — drives
    /// the backoff exponent.
    consecutive_failures: usize,
    /// Restarts within the current run (the retire budget; resets per
    /// run).
    restarts: usize,
    retired: bool,
    /// When the next respawn is allowed (backoff).
    restart_at: Option<Instant>,
    /// Lifetime counters surfaced by [`Fleet::health`]. `health.pid`,
    /// `.incarnation`, `.retired`, `.busy`, `.last_phase` are filled in
    /// at read time.
    health: SlotHealth,
}

impl Slot {
    fn fresh(index: usize) -> Slot {
        Slot {
            child: None,
            stdin: None,
            incarnation: 0,
            pid: 0,
            spawned_at: Instant::now(),
            epoch_offset_us: 0,
            crumbs: Vec::new(),
            sent_module: None,
            busy: None,
            last_beat: Instant::now(),
            consecutive_failures: 0,
            restarts: 0,
            retired: false,
            restart_at: None,
            health: SlotHealth {
                slot: index,
                ..SlotHealth::default()
            },
        }
    }

    fn live(&self) -> bool {
        self.child.is_some() && !self.retired
    }

    /// `"<phase> <fn>"` of the newest breadcrumb, if any.
    fn last_phase(&self) -> Option<String> {
        self.crumbs
            .last()
            .map(|c| format!("{} {}", c.phase.as_str(), c.fn_name))
    }
}

struct Inner {
    config: FleetConfig,
    slots: Vec<Slot>,
    tx: Sender<(usize, u64, Event)>,
    rx: Receiver<(usize, u64, Event)>,
    next_module: u64,
    next_incarnation: u64,
    /// The append-only JSONL event log (`config.events_out`); `None`
    /// when disabled or the open failed (an unwritable log never fails
    /// a run).
    events: Option<std::fs::File>,
}

impl Inner {
    /// Appends one event object to the JSONL log. `fields` follow the
    /// standing `event` + `ts_us` members. Write errors drop the log
    /// for the rest of the process — observability must never fail a
    /// run.
    fn log_event(&mut self, event: &str, fields: Vec<(String, Json)>) {
        let Some(file) = self.events.as_mut() else {
            return;
        };
        let mut members = vec![
            ("event".to_string(), Json::Str(event.to_string())),
            ("ts_us".to_string(), Json::Num(trace::clock_us() as f64)),
        ];
        members.extend(fields);
        let mut line = Json::Obj(members).render();
        line.push('\n');
        if file.write_all(line.as_bytes()).is_err() {
            self.events = None;
        }
    }
}

/// A supervised pool of worker processes. Cheap to share (`&self`
/// methods; a mutex serializes module runs). Dropping the fleet drains
/// nothing — callers finish their runs first by construction — but does
/// close every worker's stdin and reap the children.
pub struct Fleet {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Fleet")
            .field("workers", &inner.config.workers)
            .field("cmd", &inner.config.worker_cmd)
            .finish()
    }
}

/// One function's lifecycle through a module run.
struct TaskState {
    fn_index: usize,
    name: String,
    /// Dispatches so far (first attempt = 0 when dispatched).
    attempts: usize,
    /// Times a worker died (crash/hang/stuck/torn) holding this task.
    lost: usize,
}

impl Fleet {
    /// Builds the fleet. Workers are spawned lazily on the first run —
    /// a fleet that is constructed but never used costs nothing.
    pub fn new(config: FleetConfig) -> Fleet {
        let (tx, rx) = channel();
        let slots = (0..config.workers.max(1)).map(Slot::fresh).collect();
        let events = config.events_out.as_ref().and_then(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
        });
        Fleet {
            inner: Mutex::new(Inner {
                config,
                slots,
                tx,
                rx,
                next_module: 1,
                next_incarnation: 1,
                events,
            }),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.inner.lock().unwrap().config.workers
    }

    /// Per-slot lifetime health: restarts, steals, kills, redeliveries,
    /// queue depths, and the last breadcrumb phase. The daemon's
    /// `stats` reply renders these verbatim.
    pub fn health(&self) -> Vec<SlotHealth> {
        let inner = self.inner.lock().unwrap();
        inner
            .slots
            .iter()
            .map(|s| {
                let mut h = s.health.clone();
                h.pid = s.pid;
                h.incarnation = s.incarnation;
                h.retired = s.retired;
                h.busy = s.busy.is_some();
                h.last_phase = s.last_phase();
                h
            })
            .collect()
    }

    /// Analyzes `module` (compiled from `source`) across the worker
    /// pool, mirroring the in-process cache discipline exactly: hits
    /// are served supervisor-side and never reach a worker; completed
    /// worker results are inserted as misses; degraded results bypass
    /// the cache (their findings are a lower bound, kept but never
    /// cached). Functions come back in module order — rendered output
    /// is byte-identical to `analyze_module_cached` /
    /// `Detector::analyze_module` at every worker count.
    pub fn analyze_module(
        &self,
        source: &str,
        module: &Module,
        engine: EngineKind,
        config: &DetectorConfig,
        store: Option<&Store>,
    ) -> ModuleReport {
        let mut inner = self.inner.lock().unwrap();
        inner.run_module(source, module, engine, config, store)
    }

    /// Closes every worker's stdin (they exit on EOF) and reaps the
    /// children, killing any that linger past a short grace.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutdown();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.shutdown();
        }
    }
}

impl Inner {
    fn run_module(
        &mut self,
        source: &str,
        module: &Module,
        engine: EngineKind,
        config: &DetectorConfig,
        store: Option<&Store>,
    ) -> ModuleReport {
        let names: Vec<String> = module.public_functions().map(|f| f.name.clone()).collect();
        let n = names.len();
        let mut done: Vec<Option<FunctionReport>> = (0..n).map(|_| None).collect();
        let faults = config.faults.merged_with_env();
        // The supervisor's own lane in a merged trace: one span over
        // the whole fleet run, bracketing every worker's task spans.
        let mut run_span = trace::span("fleet_module", "fleet");
        if trace::is_enabled() {
            run_span.arg_str("engine", engine.label());
            run_span.arg_u64("functions", n as u64);
            run_span.arg_u64("workers", self.slots.len() as u64);
        }

        // Cache pre-pass: hits never reach a worker. Mirrors
        // `cached_function_report`'s hit path (runtime = lookup time,
        // the `cache` phase bucket, cache_hits = 1).
        let fps: Vec<_> = names
            .iter()
            .map(|name| clou_fingerprint(module, name, config, engine))
            .collect();
        let mut pending: Vec<TaskState> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            if let Some(store) = store {
                let t0 = Instant::now();
                if let Some(mut hit) = store.lookup_clou(fps[i]) {
                    cache_traffic(CacheStatus::Hit).inc();
                    let elapsed = t0.elapsed();
                    hit.runtime = elapsed;
                    hit.timings.cache = elapsed;
                    hit.timings.cache_hits = 1;
                    done[i] = Some(hit);
                    continue;
                }
            }
            pending.push(TaskState {
                fn_index: i,
                name: name.clone(),
                attempts: 0,
                lost: 0,
            });
        }

        if !pending.is_empty() {
            // The restart/retire budget is scoped to one module run: a
            // long-lived fleet (a daemon) must not permanently retire
            // its slots over crashes accumulated across thousands of
            // earlier modules. Within a run the budget still bounds a
            // restart storm.
            for slot in &mut self.slots {
                slot.restarts = 0;
                slot.consecutive_failures = 0;
                slot.retired = false;
                slot.restart_at = None;
            }
            let module_id = self.next_module;
            self.next_module += 1;
            self.drain_stale_events();
            self.supervise(
                source,
                module_id,
                engine,
                config,
                &faults,
                &mut pending,
                &fps,
                store,
                &mut done,
            );
        }

        ModuleReport {
            functions: done
                .into_iter()
                .zip(names)
                .map(|(r, name)| {
                    r.unwrap_or_else(|| {
                        // Unreachable by construction (every pending task
                        // ends done or degraded), but never panic a run.
                        FunctionReport::degraded(
                            name,
                            AnalysisError::WorkerPanic {
                                message: "fleet: task lost by supervisor".into(),
                            },
                        )
                    })
                })
                .collect(),
        }
    }

    /// The supervision loop for one module's pending (cache-missing)
    /// functions.
    #[allow(clippy::too_many_arguments)]
    fn supervise(
        &mut self,
        source: &str,
        module_id: u64,
        engine: EngineKind,
        config: &DetectorConfig,
        faults: &FaultPlan,
        pending: &mut [TaskState],
        fps: &[lcm_store::Fingerprint],
        store: Option<&Store>,
        done: &mut [Option<FunctionReport>],
    ) {
        let workers = self.slots.len();
        // Shard by content fingerprint: the same function lands on the
        // same slot run after run (and across processes).
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (t, task) in pending.iter().enumerate() {
            let slot = (fps[task.fn_index].0 % workers as u128) as usize;
            queues[slot].push_back(t);
        }
        let mut remaining = pending.len();

        while remaining > 0 {
            self.respawn_due();
            if self.slots.iter().all(|s| s.retired) {
                // Restart storm: the whole pool burned through its
                // restart budget. Degrade everything still pending —
                // a deterministic lower-bound report, never a spin.
                for q in &mut queues {
                    while let Some(t) = q.pop_front() {
                        let name = pending[t].name.clone();
                        done[pending[t].fn_index] = Some(degraded_pool_exhausted(&name));
                        self.log_event(
                            "degraded",
                            vec![
                                ("fn".to_string(), Json::Str(name)),
                                ("cause".to_string(), Json::Str("pool_exhausted".to_string())),
                            ],
                        );
                    }
                }
                for i in 0..self.slots.len() {
                    if let Some((t, _)) = self.slots[i].busy.take() {
                        let name = pending[t].name.clone();
                        done[pending[t].fn_index] = Some(degraded_pool_exhausted(&name));
                        self.log_event(
                            "degraded",
                            vec![
                                ("fn".to_string(), Json::Str(name)),
                                ("cause".to_string(), Json::Str("pool_exhausted".to_string())),
                            ],
                        );
                    }
                }
                // Every undone task was queued or in flight, so the run
                // is over (the loop condition sees zero).
                remaining = 0;
                continue;
            }

            self.dispatch(
                source,
                module_id,
                engine,
                config,
                faults,
                pending,
                fps,
                &mut queues,
            );

            let timeout = self.next_wakeup();
            match self.rx.recv_timeout(timeout) {
                Ok((slot, incarnation, event)) => {
                    if self.slots[slot].incarnation != incarnation {
                        continue; // ghost of a dead incarnation
                    }
                    self.slots[slot].last_beat = Instant::now();
                    match event {
                        Event::Hello { now_us } => {
                            // Re-basing offset: both clocks sampled as
                            // close together as the pipe allows.
                            self.slots[slot].epoch_offset_us =
                                trace::clock_us() as i64 - now_us as i64;
                        }
                        Event::Beat { crumbs } => {
                            self.slots[slot].crumbs = crumbs;
                        }
                        Event::Result(mut res) => {
                            if let Some(telemetry) = res.telemetry.take() {
                                self.absorb_telemetry(slot, telemetry);
                            }
                            let Some((t, _)) = self.slots[slot].busy.take() else {
                                continue; // result for nothing? ignore
                            };
                            if res.task_id != t as u64 {
                                // Protocol confusion: kill and redeliver.
                                self.slots[slot].busy = Some((t, Instant::now()));
                                self.fail_slot(
                                    slot,
                                    "protocol",
                                    pending,
                                    fps,
                                    &mut queues,
                                    done,
                                    &mut remaining,
                                );
                                continue;
                            }
                            self.slots[slot].consecutive_failures = 0;
                            self.slots[slot].health.tasks += 1;
                            let task = &pending[t];
                            done[task.fn_index] =
                                Some(finish_report(res.report, fps[task.fn_index], store));
                            remaining -= 1;
                        }
                        Event::Drain(telemetry) => {
                            self.absorb_telemetry(slot, telemetry);
                        }
                        Event::Gone { reason } => {
                            self.fail_slot(
                                slot,
                                reason,
                                pending,
                                fps,
                                &mut queues,
                                done,
                                &mut remaining,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("Inner holds a Sender"),
            }

            // Health sweep: deadline-blown and stuck-output workers.
            for i in 0..self.slots.len() {
                let slot = &self.slots[i];
                let Some((_, since)) = slot.busy else {
                    continue;
                };
                if slot.child.is_none() {
                    continue;
                }
                let deadline_blown = since.elapsed() > self.config.task_deadline;
                let beat_stale = slot.last_beat.elapsed() > self.config.heartbeat_grace;
                if deadline_blown || beat_stale {
                    let reason = if deadline_blown { "deadline" } else { "stuck" };
                    self.fail_slot(i, reason, pending, fps, &mut queues, done, &mut remaining);
                }
            }
        }
        // Record final queue depths (all zero after a clean run; a
        // storm-ended run leaves what it left).
        for (i, q) in queues.iter().enumerate() {
            self.slots[i].health.queue_depth = q.len() as u64;
        }
    }

    /// Folds one worker's shipped telemetry into this process: span
    /// timestamps re-base onto the supervisor's trace clock and queue
    /// under the worker's pid lane; the metrics delta adds into the
    /// global registry.
    fn absorb_telemetry(&mut self, slot: usize, telemetry: Telemetry) {
        let s = &self.slots[slot];
        if !telemetry.spans.is_empty() {
            let offset = s.epoch_offset_us;
            let spans: Vec<_> = telemetry
                .spans
                .into_iter()
                .map(|mut e| {
                    e.ts_us = (e.ts_us as i64).saturating_add(offset).max(0) as u64;
                    e
                })
                .collect();
            trace::add_foreign_events(s.pid, spans);
        }
        if !telemetry.metrics.metrics.is_empty() {
            lcm_obs::metrics::global().merge_delta(&telemetry.metrics);
        }
    }

    /// Spawns every slot whose backoff has elapsed (or that was never
    /// spawned). Spawn errors count as an instant failure of the new
    /// incarnation, feeding the same backoff/retire path as a crash.
    fn respawn_due(&mut self) {
        for i in 0..self.slots.len() {
            let slot = &self.slots[i];
            if slot.child.is_some() || slot.retired {
                continue;
            }
            if let Some(at) = slot.restart_at {
                if Instant::now() < at {
                    continue;
                }
            }
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            match spawn_worker(&self.config.worker_cmd, i, incarnation, &self.tx) {
                Ok((child, stdin)) => {
                    let pid = child.id();
                    let restart = {
                        let slot = &mut self.slots[i];
                        let restart = slot.pid != 0;
                        slot.child = Some(child);
                        slot.stdin = Some(stdin);
                        slot.incarnation = incarnation;
                        slot.pid = pid;
                        slot.spawned_at = Instant::now();
                        slot.epoch_offset_us = 0;
                        slot.crumbs = Vec::new();
                        slot.sent_module = None;
                        slot.busy = None;
                        slot.last_beat = Instant::now();
                        slot.restart_at = None;
                        if restart {
                            slot.health.restarts += 1;
                        }
                        restart
                    };
                    if restart {
                        fleet_counter(Health::Restart).inc();
                        self.log_event(
                            "restart",
                            vec![
                                ("slot".to_string(), Json::Num(i as f64)),
                                ("incarnation".to_string(), Json::Num(incarnation as f64)),
                                ("pid".to_string(), Json::Num(pid as f64)),
                            ],
                        );
                    }
                }
                Err(_) => {
                    let slot = &mut self.slots[i];
                    slot.consecutive_failures += 1;
                    slot.restarts += 1;
                    if slot.restarts > self.config.max_worker_restarts {
                        slot.retired = true;
                    } else {
                        slot.restart_at =
                            Some(Instant::now() + backoff_delay(slot.consecutive_failures));
                    }
                }
            }
        }
    }

    /// Hands tasks to every idle live worker: first from its own
    /// fingerprint-sharded queue, then stolen from the longest queue of
    /// a peer (straggler work-stealing).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        source: &str,
        module_id: u64,
        engine: EngineKind,
        config: &DetectorConfig,
        faults: &FaultPlan,
        pending: &mut [TaskState],
        fps: &[lcm_store::Fingerprint],
        queues: &mut [VecDeque<usize>],
    ) {
        let trace_workers = self.config.trace_workers.unwrap_or_else(trace::is_enabled);
        for i in 0..self.slots.len() {
            if !self.slots[i].live() || self.slots[i].busy.is_some() {
                continue;
            }
            let (t, stolen) = match queues[i].pop_front() {
                Some(t) => (t, false),
                None => {
                    // Steal from the back of the longest peer queue.
                    let victim = (0..queues.len())
                        .filter(|&j| j != i && !queues[j].is_empty())
                        .max_by_key(|&j| queues[j].len());
                    match victim {
                        Some(j) => (queues[j].pop_back().unwrap(), true),
                        None => continue,
                    }
                }
            };
            let task = &mut pending[t];
            let attempt = task.attempts;
            task.attempts += 1;
            // First delivery carries the armed plan; redeliveries strip
            // the fleet.* sites so injected process faults fire once.
            let plan = if attempt == 0 || self.config.refire_faults_on_retry {
                faults.clone()
            } else {
                faults.without_sites(FLEET_SITES)
            };
            let mut cfg = config.clone();
            cfg.faults = plan;
            let fp = fps[task.fn_index].0;
            let fn_name = task.name.clone();
            let frame = ToWorker::Task(Task {
                task_id: t as u64,
                module_id,
                fn_index: task.fn_index as u64,
                fn_name: fn_name.clone(),
                engine,
                config: cfg,
                trace: trace_workers,
                worker_slot: i as u64,
                fingerprint: ((fp >> 64) as u64, fp as u64),
                stolen,
            });
            if stolen {
                self.slots[i].health.steals += 1;
                fleet_counter(Health::Steal).inc();
                self.log_event(
                    "steal",
                    vec![
                        ("slot".to_string(), Json::Num(i as f64)),
                        ("fn".to_string(), Json::Str(fn_name.clone())),
                        ("fingerprint".to_string(), Json::Str(fp_hex(fp))),
                    ],
                );
            }
            let needs_module = self.slots[i].sent_module != Some(module_id);
            let sent = {
                let stdin = self.slots[i].stdin.as_mut().expect("live slot has stdin");
                let module_ok = !needs_module
                    || proto::write_frame(
                        stdin,
                        &ToWorker::Module {
                            id: module_id,
                            source: source.to_string(),
                        }
                        .encode(),
                    )
                    .is_ok();
                module_ok && proto::write_frame(stdin, &frame.encode()).is_ok()
            };
            if sent {
                self.slots[i].sent_module = Some(module_id);
                self.slots[i].busy = Some((t, Instant::now()));
                self.slots[i].last_beat = Instant::now();
            } else {
                // Dead on arrival (EPIPE): put the task back exactly as
                // it was and let the failure path restart the slot. The
                // attempt did not reach a worker, so it does not count.
                task.attempts = attempt;
                queues[i].push_front(t);
                self.reap_incarnation(i, "write_failed", None);
                self.bump_failure(i);
            }
            self.slots[i].health.queue_depth = queues[i].len() as u64;
        }
    }

    /// A worker incarnation died (or was declared dead) — emit the
    /// forensic record, redistribute its task, count the loss, restart
    /// with backoff or retire.
    #[allow(clippy::too_many_arguments)]
    fn fail_slot(
        &mut self,
        i: usize,
        reason: &'static str,
        pending: &mut [TaskState],
        fps: &[lcm_store::Fingerprint],
        queues: &mut [VecDeque<usize>],
        done: &mut [Option<FunctionReport>],
        remaining: &mut usize,
    ) {
        // A clean EOF while a task was in flight is a crash; without
        // one it is just an exit (still fatal for the incarnation).
        let busy = self.slots[i].busy;
        let reason = match (reason, busy) {
            ("eof", Some(_)) => "crash",
            ("eof", None) => "exit",
            (r, _) => r,
        };
        let last_task = busy.map(|(t, _)| {
            let task = &pending[t];
            (task.name.clone(), fps[task.fn_index].0)
        });
        self.reap_incarnation(i, reason, last_task);
        if let Some((t, _)) = busy {
            self.slots[i].busy = None;
            let task = &mut pending[t];
            task.lost += 1;
            if task.lost >= self.config.max_task_attempts {
                // Per-function circuit breaker: this function has now
                // killed enough workers. Degrade deterministically.
                done[task.fn_index] = Some(degraded_task_fatal(&task.name, task.lost));
                *remaining -= 1;
                let name = pending[t].name.clone();
                let lost = pending[t].lost;
                self.log_event(
                    "degraded",
                    vec![
                        ("fn".to_string(), Json::Str(name)),
                        ("lost".to_string(), Json::Num(lost as f64)),
                        (
                            "cause".to_string(),
                            Json::Str("task_attempts_exhausted".to_string()),
                        ),
                    ],
                );
            } else {
                // Redistribute to the least-loaded surviving queue (the
                // failed slot's own queue is still valid — it restarts).
                let target = (0..queues.len())
                    .filter(|&j| !self.slots[j].retired)
                    .min_by_key(|&j| queues[j].len())
                    .unwrap_or(i);
                queues[target].push_front(t);
                self.slots[i].health.redeliveries += 1;
                fleet_counter(Health::Redelivery).inc();
                let name = pending[t].name.clone();
                self.log_event(
                    "redeliver",
                    vec![
                        ("fn".to_string(), Json::Str(name)),
                        ("from_slot".to_string(), Json::Num(i as f64)),
                        ("to_slot".to_string(), Json::Num(target as f64)),
                        ("lost".to_string(), Json::Num(pending[t].lost as f64)),
                    ],
                );
            }
        }
        self.bump_failure(i);
    }

    /// Emits the black-box forensic record for a dying incarnation
    /// (reason, uptime, restart count, last task, last breadcrumb
    /// phase), bumps the kill counters, then kills and reaps the child.
    fn reap_incarnation(&mut self, i: usize, reason: &str, last_task: Option<(String, u128)>) {
        if self.slots[i].child.is_some() {
            let slot = &self.slots[i];
            let uptime_ms = slot.spawned_at.elapsed().as_millis() as f64;
            let mut fields = vec![
                ("reason".to_string(), Json::Str(reason.to_string())),
                ("slot".to_string(), Json::Num(i as f64)),
                (
                    "incarnation".to_string(),
                    Json::Num(slot.incarnation as f64),
                ),
                ("pid".to_string(), Json::Num(slot.pid as f64)),
                ("uptime_ms".to_string(), Json::Num(uptime_ms)),
                (
                    "restarts".to_string(),
                    Json::Num(slot.health.restarts as f64),
                ),
                (
                    "last_phase".to_string(),
                    slot.last_phase().map_or(Json::Null, Json::Str),
                ),
            ];
            if let Some((fn_name, fp)) = last_task {
                fields.push((
                    "last_task".to_string(),
                    Json::Obj(vec![
                        ("fn".to_string(), Json::Str(fn_name)),
                        ("fingerprint".to_string(), Json::Str(fp_hex(fp))),
                    ]),
                ));
            }
            self.slots[i].health.kills += 1;
            kill_counter(reason).inc();
            self.log_event("worker_exit", fields);
        }
        self.kill_incarnation(i);
    }

    fn bump_failure(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        slot.consecutive_failures += 1;
        slot.restarts += 1;
        if slot.restarts > self.config.max_worker_restarts {
            slot.retired = true;
        } else {
            slot.restart_at = Some(Instant::now() + backoff_delay(slot.consecutive_failures));
        }
    }

    /// Kills and reaps the slot's current child (idempotent).
    fn kill_incarnation(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.sent_module = None;
        slot.busy = None;
    }

    /// How long the event loop may sleep: until the nearest task
    /// deadline, heartbeat-grace expiry, or restart due-time — capped
    /// so supervision stays responsive.
    fn next_wakeup(&self) -> Duration {
        let mut wake = Duration::from_millis(100);
        let now = Instant::now();
        for slot in &self.slots {
            if let Some((_, since)) = slot.busy {
                let deadline = self
                    .config
                    .task_deadline
                    .saturating_sub(now.saturating_duration_since(since));
                let grace = self
                    .config
                    .heartbeat_grace
                    .saturating_sub(now.saturating_duration_since(slot.last_beat));
                wake = wake.min(deadline).min(grace);
            }
            if let Some(at) = slot.restart_at {
                wake = wake.min(at.saturating_duration_since(now));
            }
        }
        // A zero timeout would busy-spin; events still arrive during
        // the minimum sleep.
        wake.max(Duration::from_millis(1))
    }

    /// Throws away events left over from previous runs (dead
    /// incarnations, late beats). Current-incarnation `Gone` events are
    /// kept meaningful by re-checking child liveness lazily — a worker
    /// that died between runs fails on first dispatch write instead.
    fn drain_stale_events(&mut self) {
        while self.rx.try_recv().is_ok() {}
    }

    fn shutdown(&mut self) {
        let had_children = self.slots.iter().any(|s| s.child.is_some());
        // Close every stdin: workers exit on EOF.
        for slot in &mut self.slots {
            slot.stdin = None;
        }
        if !had_children {
            return; // nothing spawned (or already shut down)
        }
        // Grace period for clean exits, then kill stragglers. While
        // waiting, pump the event channel: exiting workers flush a
        // final `Drain` frame (spans recorded after their last result,
        // metrics that accrued outside tasks) that must land in the
        // merged trace.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            while let Ok((slot, incarnation, event)) = self.rx.try_recv() {
                if self.slots[slot].incarnation == incarnation {
                    if let Event::Drain(telemetry) = event {
                        self.absorb_telemetry(slot, telemetry);
                    }
                }
            }
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            slot.child = None;
                        }
                        _ => alive = true,
                    }
                }
            }
            if !alive || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Children are reaped, but a reader thread may still be
        // flushing a Drain it pulled off the pipe — give it a beat.
        std::thread::sleep(Duration::from_millis(20));
        while let Ok((slot, incarnation, event)) = self.rx.try_recv() {
            if self.slots[slot].incarnation == incarnation {
                if let Event::Drain(telemetry) = event {
                    self.absorb_telemetry(slot, telemetry);
                }
            }
        }
    }
}

/// Spawns one worker and its stdout-reader thread. The reader tags
/// every event with the incarnation id so ghosts of dead incarnations
/// are filtered out by the event loop.
fn spawn_worker(
    cmd: &[String],
    slot: usize,
    incarnation: u64,
    tx: &Sender<(usize, u64, Event)>,
) -> std::io::Result<(Child, ChildStdin)> {
    let (program, args) = cmd.split_first().expect("worker_cmd non-empty");
    let mut child = Command::new(program)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .env(WORKER_ENV, "1")
        // Workers must see exactly the plan the supervisor ships in each
        // task — an inherited LCM_FAULT would re-arm stripped fleet
        // sites on every retry and turn one injected crash into a loop.
        .env_remove(lcm_core::fault::FAULT_ENV)
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        loop {
            match proto::read_frame(&mut reader) {
                Ok(Some(body)) => match FromWorker::decode(&body) {
                    Ok(FromWorker::Hello { now_us, .. }) => {
                        let _ = tx.send((slot, incarnation, Event::Hello { now_us }));
                    }
                    Ok(FromWorker::Beat { crumbs }) => {
                        let _ = tx.send((slot, incarnation, Event::Beat { crumbs }));
                    }
                    Ok(FromWorker::Result(res)) => {
                        let _ = tx.send((slot, incarnation, Event::Result(res)));
                    }
                    Ok(FromWorker::Drain(telemetry)) => {
                        let _ = tx.send((slot, incarnation, Event::Drain(telemetry)));
                    }
                    Err(_) => {
                        let _ = tx.send((slot, incarnation, Event::Gone { reason: "corrupt" }));
                        return;
                    }
                },
                Ok(None) => {
                    let _ = tx.send((slot, incarnation, Event::Gone { reason: "eof" }));
                    return;
                }
                Err(_) => {
                    let _ = tx.send((
                        slot,
                        incarnation,
                        Event::Gone {
                            reason: "torn_frame",
                        },
                    ));
                    return;
                }
            }
        }
    });
    Ok((child, stdin))
}

/// The run's content fingerprint rendered the way traces and event
/// logs quote it: 32 lower-case hex digits.
fn fp_hex(fp: u128) -> String {
    format!("{fp:032x}")
}

/// Which fleet health counter to bump.
enum Health {
    Restart,
    Steal,
    Redelivery,
}

/// The supervisor's fleet health counters (`lcm_fleet_*_total`),
/// registered once in the process-global registry.
fn fleet_counter(which: Health) -> &'static lcm_obs::metrics::Counter {
    use lcm_obs::metrics::{global, names, Counter};
    use std::sync::OnceLock;
    static HANDLES: OnceLock<[Counter; 3]> = OnceLock::new();
    let [restarts, steals, redeliveries] = HANDLES.get_or_init(|| {
        let g = global();
        [
            g.counter(
                names::FLEET_RESTARTS,
                "Worker-slot restarts performed by the fleet supervisor",
            ),
            g.counter(
                names::FLEET_STEALS,
                "Tasks an idle worker stole from a peer slot's queue",
            ),
            g.counter(
                names::FLEET_REDELIVERIES,
                "Tasks redelivered to a surviving queue after a worker failure",
            ),
        ]
    });
    match which {
        Health::Restart => restarts,
        Health::Steal => steals,
        Health::Redelivery => redeliveries,
    }
}

/// The per-reason kill counter
/// (`lcm_fleet_kills_total{reason="crash"|"deadline"|…}`). Reasons are
/// a small closed set, so the per-call registry lookup is fine — kills
/// are rare by definition.
fn kill_counter(reason: &str) -> lcm_obs::metrics::Counter {
    use lcm_obs::metrics::{global, labeled, names};
    global().counter(
        &labeled(names::FLEET_KILLS, "reason", reason),
        "Worker incarnations killed by the supervisor, by reason",
    )
}

/// Applies the in-process cache discipline to a worker's report:
/// completed results are inserted and labeled `Miss`; degraded results
/// bypass the cache. Mirrors `cached_function_report`'s miss path.
fn finish_report(
    mut report: FunctionReport,
    fp: lcm_store::Fingerprint,
    store: Option<&Store>,
) -> FunctionReport {
    match store {
        Some(store) if report.status.is_completed() => {
            report.cache = CacheStatus::Miss;
            store.insert_clou(fp, &report);
            cache_traffic(CacheStatus::Miss).inc();
        }
        Some(_) => {
            report.cache = CacheStatus::Bypass;
            // The in-process path skips the bypass counter for worker
            // panics (the panic unwinds past the increment); mirror it.
            if !matches!(
                report.status.error(),
                Some(AnalysisError::WorkerPanic { .. })
            ) {
                cache_traffic(CacheStatus::Bypass).inc();
            }
        }
        None => report.cache = CacheStatus::Bypass,
    }
    report
}

/// Deterministic degradation for a function that kept killing its
/// workers (the per-function circuit breaker).
fn degraded_task_fatal(name: &str, lost: usize) -> FunctionReport {
    FunctionReport::degraded(
        name.to_string(),
        AnalysisError::WorkerPanic {
            message: format!("fleet: worker process lost {lost} time(s) analyzing `{name}`"),
        },
    )
}

/// Deterministic degradation when the whole pool retired mid-run.
fn degraded_pool_exhausted(name: &str) -> FunctionReport {
    FunctionReport::degraded(
        name.to_string(),
        AnalysisError::WorkerPanic {
            message: format!("fleet: worker pool exhausted analyzing `{name}`"),
        },
    )
}

/// The process-wide cache-traffic counters, same names as the store's
/// own (`lcm_cache_{hits,misses,bypass}_total`) — fleet-mode runs and
/// in-process runs report cache traffic through one set of metrics.
fn cache_traffic(status: CacheStatus) -> &'static lcm_obs::metrics::Counter {
    use lcm_obs::metrics::{global, names, Counter};
    use std::sync::OnceLock;
    static HANDLES: OnceLock<[Counter; 3]> = OnceLock::new();
    let [hits, misses, bypass] = HANDLES.get_or_init(|| {
        let g = global();
        [
            g.counter(names::CACHE_HITS, "Function results served from the store"),
            g.counter(
                names::CACHE_MISSES,
                "Function results analyzed and inserted into the store",
            ),
            g.counter(
                names::CACHE_BYPASS,
                "Function results that skipped the store (degraded/uncacheable)",
            ),
        ]
    });
    match status {
        CacheStatus::Hit => hits,
        CacheStatus::Miss => misses,
        CacheStatus::Bypass => bypass,
    }
}
