//! The supervisor ↔ worker wire protocol.
//!
//! Length-delimited binary frames (`u32le` length + body) over the
//! child's stdin/stdout pipes, encoded with the same hand-rolled
//! little-endian codec the result store uses on disk (the workspace
//! carries no serde). Findings cross the process boundary through
//! [`lcm_store::codec::encode_finding`] verbatim, so a result decoded
//! from a worker is bit-for-bit the result an in-process run produces.
//!
//! Decoding is *total*: every read is bounds-checked and every tag
//! validated, returning [`Corrupt`] instead of panicking. A worker that
//! ships garbage (torn frame, bad tag) is treated exactly like a worker
//! that crashed: killed, restarted, its task redelivered.

use std::io::{self, Read, Write};
use std::time::Duration;

use lcm_core::govern::{AnalysisError, BudgetKind, Budgets};
use lcm_core::speculation::SpeculationConfig;
use lcm_core::taxonomy::TransmitterClass;
use lcm_core::FaultPlan;
use lcm_detect::{DetectorConfig, EngineKind, FunctionReport, FunctionStatus, PhaseTimings};
use lcm_store::codec::{self, Corrupt, R, W};

/// Refuse absurd frames (a corrupt length prefix must not drive a
/// multi-gigabyte allocation). Same ceiling as the store's payloads.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one `u32le`-length-delimited frame and flushes it (results
/// must not sit in a BufWriter while the supervisor waits).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is EOF at a frame boundary (the peer
/// closed the stream cleanly — or died before starting a frame, which
/// the caller distinguishes by whether work was in flight). EOF *mid*
/// frame is an error: a torn frame from a peer that died mid-write.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::other("fleet frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// One analysis task: which function of which module, under which
/// findings-affecting configuration. The fault plan rides inside the
/// config as its canonical spec string, so the supervisor can strip
/// the `fleet.*` sites on redelivery.
#[derive(Debug, Clone)]
pub struct Task {
    /// Supervisor-assigned id echoed back in the result.
    pub task_id: u64,
    /// Which previously-shipped module this task targets.
    pub module_id: u64,
    /// The function's index in module order (keys the fault plan).
    pub fn_index: u64,
    /// The function's name.
    pub fn_name: String,
    /// Which engine to run.
    pub engine: EngineKind,
    /// The detector configuration (jobs is forced to 1 worker-side).
    pub config: DetectorConfig,
}

/// Supervisor → worker messages.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Ship a module's source; the worker compiles and caches it under
    /// `id` (one module at a time — a new one replaces the old).
    Module { id: u64, source: String },
    /// Analyze one function of the current module.
    Task(Task),
}

/// One finished task: the worker's verbatim [`FunctionReport`]
/// (including partial findings and the error of a degraded run — the
/// supervisor owns the cache discipline, the worker just reports).
#[derive(Debug, Clone)]
pub struct TaskResult {
    pub task_id: u64,
    pub report: FunctionReport,
}

/// Worker → supervisor messages.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// First frame after spawn: the worker is alive.
    Hello { pid: u64 },
    /// Liveness beat, sent periodically while a task is in flight.
    Beat,
    /// A finished task.
    Result(TaskResult),
}

fn engine_code(e: EngineKind) -> u8 {
    match e {
        EngineKind::Pht => 0,
        EngineKind::Stl => 1,
        EngineKind::Psf => 2,
    }
}

fn engine_of(code: u8) -> Result<EngineKind, Corrupt> {
    Ok(match code {
        0 => EngineKind::Pht,
        1 => EngineKind::Stl,
        2 => EngineKind::Psf,
        _ => return Err(Corrupt),
    })
}

fn class_code(c: TransmitterClass) -> u8 {
    match c {
        TransmitterClass::Address => 0,
        TransmitterClass::Control => 1,
        TransmitterClass::Data => 2,
        TransmitterClass::UniversalControl => 3,
        TransmitterClass::UniversalData => 4,
    }
}

fn class_of(code: u8) -> Result<TransmitterClass, Corrupt> {
    Ok(match code {
        0 => TransmitterClass::Address,
        1 => TransmitterClass::Control,
        2 => TransmitterClass::Data,
        3 => TransmitterClass::UniversalControl,
        4 => TransmitterClass::UniversalData,
        _ => return Err(Corrupt),
    })
}

fn opt_u64(w: &mut W, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
    }
}

fn opt_u64_of(r: &mut R) -> Result<Option<u64>, Corrupt> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(Corrupt),
    }
}

fn encode_config(w: &mut W, c: &DetectorConfig) {
    w.u64(c.spec.rob_size as u64);
    w.u64(c.spec.lsq_size as u64);
    w.u64(c.spec.speculation_depth as u64);
    w.u64(c.window as u64);
    // u64::MAX = every class (the fingerprint uses the same sentinel).
    w.u64(c.target_class.map_or(u64::MAX, |tc| class_code(tc) as u64));
    w.bool(c.gep_filter);
    w.bool(c.universal_needs_transient_access);
    w.bool(c.secret_filter);
    w.bool(c.detect_interference);
    w.bool(c.disable_incremental);
    w.bool(c.disable_prefilter);
    opt_u64(w, c.budgets.timeout.map(|d| d.as_nanos() as u64));
    opt_u64(w, c.budgets.max_conflicts);
    opt_u64(w, c.budgets.max_saeg_nodes.map(|n| n as u64));
    opt_u64(w, c.budgets.max_saeg_edges.map(|n| n as u64));
    w.str(&c.faults.render());
}

fn decode_config(r: &mut R) -> Result<DetectorConfig, Corrupt> {
    let mut c = DetectorConfig::default();
    c.spec = SpeculationConfig {
        rob_size: r.u64()? as usize,
        lsq_size: r.u64()? as usize,
        speculation_depth: r.u64()? as usize,
    };
    c.window = r.u64()? as usize;
    c.target_class = match r.u64()? {
        u64::MAX => None,
        code => Some(class_of(u8::try_from(code).map_err(|_| Corrupt)?)?),
    };
    c.gep_filter = r.bool()?;
    c.universal_needs_transient_access = r.bool()?;
    c.secret_filter = r.bool()?;
    c.detect_interference = r.bool()?;
    c.disable_incremental = r.bool()?;
    c.disable_prefilter = r.bool()?;
    c.budgets = Budgets {
        timeout: opt_u64_of(r)?.map(Duration::from_nanos),
        max_conflicts: opt_u64_of(r)?,
        max_saeg_nodes: opt_u64_of(r)?.map(|n| n as usize),
        max_saeg_edges: opt_u64_of(r)?.map(|n| n as usize),
    };
    c.faults = FaultPlan::parse(&r.str()?).map_err(|_| Corrupt)?;
    // The worker analyzes exactly one function per task; intra-function
    // parallelism inside a crash-isolated child would only perturb
    // scheduling-dependent counters.
    c.jobs = 1;
    Ok(c)
}

fn encode_error(w: &mut W, e: &AnalysisError) {
    match e {
        AnalysisError::Timeout { budget_ms } => {
            w.u8(0);
            w.u64(*budget_ms);
        }
        AnalysisError::BudgetExceeded { kind } => {
            w.u8(1);
            w.u8(match kind {
                BudgetKind::SolverConflicts => 0,
                BudgetKind::SaegNodes => 1,
                BudgetKind::SaegEdges => 2,
            });
        }
        AnalysisError::MalformedIr { message } => {
            w.u8(2);
            w.str(message);
        }
        AnalysisError::WorkerPanic { message } => {
            w.u8(3);
            w.str(message);
        }
        AnalysisError::SolverAbort => w.u8(4),
    }
}

fn decode_error(r: &mut R) -> Result<AnalysisError, Corrupt> {
    Ok(match r.u8()? {
        0 => AnalysisError::Timeout {
            budget_ms: r.u64()?,
        },
        1 => AnalysisError::BudgetExceeded {
            kind: match r.u8()? {
                0 => BudgetKind::SolverConflicts,
                1 => BudgetKind::SaegNodes,
                2 => BudgetKind::SaegEdges,
                _ => return Err(Corrupt),
            },
        },
        2 => AnalysisError::MalformedIr { message: r.str()? },
        3 => AnalysisError::WorkerPanic { message: r.str()? },
        4 => AnalysisError::SolverAbort,
        _ => return Err(Corrupt),
    })
}

fn encode_timings(w: &mut W, t: &PhaseTimings) {
    for d in [
        t.acfg_build,
        t.saeg_build,
        t.encode,
        t.solve,
        t.classify,
        t.baseline,
        t.bh_enumerate,
        t.bh_execute,
        t.bh_witness,
        t.cache,
        t.other,
    ] {
        w.u64(d.as_nanos() as u64);
    }
    for v in [
        t.sat_queries,
        t.memo_hits,
        t.queries_avoided,
        t.prefilter_hits,
        t.solver_reuses,
        t.clauses_retained,
        t.cache_hits,
    ] {
        w.u64(v);
    }
}

fn decode_timings(r: &mut R) -> Result<PhaseTimings, Corrupt> {
    let mut t = PhaseTimings::default();
    for d in [
        &mut t.acfg_build,
        &mut t.saeg_build,
        &mut t.encode,
        &mut t.solve,
        &mut t.classify,
        &mut t.baseline,
        &mut t.bh_enumerate,
        &mut t.bh_execute,
        &mut t.bh_witness,
        &mut t.cache,
        &mut t.other,
    ] {
        *d = Duration::from_nanos(r.u64()?);
    }
    for v in [
        &mut t.sat_queries,
        &mut t.memo_hits,
        &mut t.queries_avoided,
        &mut t.prefilter_hits,
        &mut t.solver_reuses,
        &mut t.clauses_retained,
        &mut t.cache_hits,
    ] {
        *v = r.u64()?;
    }
    Ok(t)
}

/// Serializes a full [`FunctionReport`] — unlike the store's
/// `encode_clou`, degraded reports are legal here: their partial
/// findings are a lower bound the supervisor keeps (and never caches).
fn encode_report(w: &mut W, report: &FunctionReport) {
    w.str(&report.name);
    w.u64(report.saeg_size as u64);
    w.u64(report.runtime.as_nanos() as u64);
    encode_timings(w, &report.timings);
    match report.status.error() {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            encode_error(w, e);
        }
    }
    w.u32(report.transmitters.len() as u32);
    for f in &report.transmitters {
        codec::encode_finding(w, f);
    }
}

fn decode_report(r: &mut R) -> Result<FunctionReport, Corrupt> {
    let name = r.str()?;
    let saeg_size = r.u64()? as usize;
    let runtime = Duration::from_nanos(r.u64()?);
    let timings = decode_timings(r)?;
    let status = match r.u8()? {
        0 => FunctionStatus::Completed,
        1 => FunctionStatus::Degraded(decode_error(r)?),
        _ => return Err(Corrupt),
    };
    let n = r.u32()? as usize;
    let mut transmitters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        transmitters.push(codec::decode_finding(r)?);
    }
    Ok(FunctionReport {
        name,
        transmitters,
        saeg_size,
        runtime,
        timings,
        status,
        // The supervisor stamps the real disposition (hit/miss/bypass);
        // the worker has no cache to consult.
        cache: lcm_detect::CacheStatus::Bypass,
    })
}

impl ToWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new();
        match self {
            ToWorker::Module { id, source } => {
                w.u8(1);
                w.u64(*id);
                w.str(source);
            }
            ToWorker::Task(t) => {
                w.u8(2);
                w.u64(t.task_id);
                w.u64(t.module_id);
                w.u64(t.fn_index);
                w.str(&t.fn_name);
                w.u8(engine_code(t.engine));
                encode_config(&mut w, &t.config);
            }
        }
        w.0
    }

    pub fn decode(body: &[u8]) -> Result<Self, Corrupt> {
        let mut r = R::new(body);
        let msg = match r.u8()? {
            1 => ToWorker::Module {
                id: r.u64()?,
                source: r.str()?,
            },
            2 => ToWorker::Task(Task {
                task_id: r.u64()?,
                module_id: r.u64()?,
                fn_index: r.u64()?,
                fn_name: r.str()?,
                engine: engine_of(r.u8()?)?,
                config: decode_config(&mut r)?,
            }),
            _ => return Err(Corrupt),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl FromWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new();
        match self {
            FromWorker::Hello { pid } => {
                w.u8(1);
                w.u64(*pid);
            }
            FromWorker::Beat => w.u8(2),
            FromWorker::Result(res) => {
                w.u8(3);
                w.u64(res.task_id);
                encode_report(&mut w, &res.report);
            }
        }
        w.0
    }

    pub fn decode(body: &[u8]) -> Result<Self, Corrupt> {
        let mut r = R::new(body);
        let msg = match r.u8()? {
            1 => FromWorker::Hello { pid: r.u64()? },
            2 => FromWorker::Beat,
            3 => FromWorker::Result(TaskResult {
                task_id: r.u64()?,
                report: decode_report(&mut r)?,
            }),
            _ => return Err(Corrupt),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::fault::site;

    fn sample_config() -> DetectorConfig {
        let mut c = DetectorConfig::default();
        c.window = 99;
        c.target_class = Some(TransmitterClass::UniversalData);
        c.secret_filter = true;
        c.budgets.timeout = Some(Duration::from_millis(1500));
        c.budgets.max_conflicts = Some(4096);
        c.faults = FaultPlan::default().arm(site::WORKER_PANIC, Some(1));
        c
    }

    #[test]
    fn task_round_trips() {
        let msg = ToWorker::Task(Task {
            task_id: 7,
            module_id: 3,
            fn_index: 2,
            fn_name: "victim".into(),
            engine: EngineKind::Stl,
            config: sample_config(),
        });
        let body = msg.encode();
        let ToWorker::Task(t) = ToWorker::decode(&body).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(t.task_id, 7);
        assert_eq!(t.fn_name, "victim");
        assert_eq!(t.engine, EngineKind::Stl);
        assert_eq!(t.config.window, 99);
        assert_eq!(t.config.target_class, Some(TransmitterClass::UniversalData));
        assert_eq!(t.config.budgets.timeout, Some(Duration::from_millis(1500)));
        assert_eq!(t.config.budgets.max_conflicts, Some(4096));
        assert!(t.config.faults.fires(site::WORKER_PANIC, 1));
        assert_eq!(t.config.jobs, 1, "workers always run serial");
    }

    #[test]
    fn module_round_trips() {
        let msg = ToWorker::Module {
            id: 5,
            source: "int x;".into(),
        };
        let ToWorker::Module { id, source } = ToWorker::decode(&msg.encode()).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!((id, source.as_str()), (5, "int x;"));
    }

    #[test]
    fn degraded_result_round_trips_with_partial_findings() {
        use lcm_detect::CacheStatus;
        // A degraded report that still carries findings (the governor
        // tripping mid-run keeps what it found): the fleet codec must
        // ship both, which the store's encode_clou refuses.
        let mut report = FunctionReport::degraded(
            "victim".into(),
            AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegNodes,
            },
        );
        report.saeg_size = 41;
        let msg = FromWorker::Result(TaskResult { task_id: 9, report });
        let FromWorker::Result(res) = FromWorker::decode(&msg.encode()).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(res.task_id, 9);
        assert_eq!(res.report.saeg_size, 41);
        assert_eq!(res.report.cache, CacheStatus::Bypass);
        assert_eq!(
            res.report.status.error().map(|e| e.to_string()),
            Some("budget exceeded: S-AEG nodes".into())
        );
    }

    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        let body = ToWorker::Task(Task {
            task_id: 1,
            module_id: 1,
            fn_index: 0,
            fn_name: "f".into(),
            engine: EngineKind::Pht,
            config: sample_config(),
        })
        .encode();
        for cut in 0..body.len() {
            assert!(ToWorker::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn frame_layer_round_trips_and_detects_tears() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // A torn frame (length says 5, only 2 bytes arrive) is an error,
        // not a silent EOF.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"hello").unwrap();
        torn.truncate(6);
        let mut r = &torn[..];
        assert!(read_frame(&mut r).is_err());
    }
}
