//! The supervisor ↔ worker wire protocol.
//!
//! Length-delimited binary frames (`u32le` length + body) over the
//! child's stdin/stdout pipes, encoded with the same hand-rolled
//! little-endian codec the result store uses on disk (the workspace
//! carries no serde). Findings cross the process boundary through
//! [`lcm_store::codec::encode_finding`] verbatim, so a result decoded
//! from a worker is bit-for-bit the result an in-process run produces.
//!
//! Decoding is *total*: every read is bounds-checked and every tag
//! validated, returning [`Corrupt`] instead of panicking. A worker that
//! ships garbage (torn frame, bad tag) is treated exactly like a worker
//! that crashed: killed, restarted, its task redelivered.

use std::io::{self, Read, Write};
use std::time::Duration;

use lcm_core::govern::{AnalysisError, BudgetKind, Budgets};
use lcm_core::speculation::SpeculationConfig;
use lcm_core::taxonomy::TransmitterClass;
use lcm_core::FaultPlan;
use lcm_detect::{DetectorConfig, EngineKind, FunctionReport, FunctionStatus, PhaseTimings};
use lcm_obs::metrics::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use lcm_obs::trace::{ArgValue, ForeignEvent};
use lcm_store::codec::{self, Corrupt, R, W};

/// Refuse absurd frames (a corrupt length prefix must not drive a
/// multi-gigabyte allocation). Same ceiling as the store's payloads.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one `u32le`-length-delimited frame and flushes it (results
/// must not sit in a BufWriter while the supervisor waits).
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is EOF at a frame boundary (the peer
/// closed the stream cleanly — or died before starting a frame, which
/// the caller distinguishes by whether work was in flight). EOF *mid*
/// frame is an error: a torn frame from a peer that died mid-write.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::other("fleet frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// One analysis task: which function of which module, under which
/// findings-affecting configuration. The fault plan rides inside the
/// config as its canonical spec string, so the supervisor can strip
/// the `fleet.*` sites on redelivery.
#[derive(Debug, Clone)]
pub struct Task {
    /// Supervisor-assigned id echoed back in the result.
    pub task_id: u64,
    /// Which previously-shipped module this task targets.
    pub module_id: u64,
    /// The function's index in module order (keys the fault plan).
    pub fn_index: u64,
    /// The function's name.
    pub fn_name: String,
    /// Which engine to run.
    pub engine: EngineKind,
    /// The detector configuration (jobs is forced to 1 worker-side).
    pub config: DetectorConfig,
    /// Record spans worker-side and ship them back with the result.
    pub trace: bool,
    /// The supervisor slot this task was dispatched to (trace/forensic
    /// annotation only — results route by `task_id`).
    pub worker_slot: u64,
    /// The function's content fingerprint, split into `(hi, lo)` u64
    /// halves of the u128 (annotation for traces and crash forensics).
    pub fingerprint: (u64, u64),
    /// Whether this dispatch stole the task from a peer slot's queue.
    pub stolen: bool,
}

/// One breadcrumb in a worker's black-box ring: which task it was
/// touching and how far it had gotten. Mirrored supervisor-side from
/// heartbeats so a postmortem can name the last known phase even when
/// the worker dies without a result frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Crumb {
    /// The task this crumb describes.
    pub task_id: u64,
    /// The task's function name.
    pub fn_name: String,
    /// The phase reached.
    pub phase: CrumbPhase,
    /// Microseconds on the worker's trace clock when the crumb was
    /// dropped.
    pub ts_us: u64,
}

/// How far a worker got with a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrumbPhase {
    /// Task frame decoded, not yet analyzing.
    Received,
    /// Analysis in flight.
    Analyzing,
    /// Result written back.
    Done,
}

impl CrumbPhase {
    /// Stable lower-case name, used in event logs and `stats` replies.
    pub fn as_str(self) -> &'static str {
        match self {
            CrumbPhase::Received => "received",
            CrumbPhase::Analyzing => "analyzing",
            CrumbPhase::Done => "done",
        }
    }
}

/// Telemetry shipped from worker to supervisor: the worker's span
/// buffer since the last drain (timestamps still on the worker's
/// clock) and the additive change of its metrics registry. Rides
/// result frames and the final drain frame at clean exit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Drained span events ([`lcm_obs::trace::drain_local_events`]).
    pub spans: Vec<ForeignEvent>,
    /// Registry delta ([`MetricsSnapshot::delta_since`]).
    pub metrics: MetricsSnapshot,
}

/// Supervisor → worker messages.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Ship a module's source; the worker compiles and caches it under
    /// `id` (one module at a time — a new one replaces the old).
    Module { id: u64, source: String },
    /// Analyze one function of the current module.
    Task(Task),
}

/// One finished task: the worker's verbatim [`FunctionReport`]
/// (including partial findings and the error of a degraded run — the
/// supervisor owns the cache discipline, the worker just reports).
#[derive(Debug, Clone)]
pub struct TaskResult {
    pub task_id: u64,
    pub report: FunctionReport,
    /// Spans + metrics delta accumulated during this task. `None` when
    /// the worker has nothing to ship (tracing off *and* no metric
    /// moved).
    pub telemetry: Option<Telemetry>,
}

/// Worker → supervisor messages.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// First frame after spawn: the worker is alive. `now_us` is the
    /// worker's trace clock at send time; the supervisor derives the
    /// re-basing offset from it (see [`lcm_obs::trace::clock_us`]).
    Hello { pid: u64, now_us: u64 },
    /// Liveness beat, sent periodically while a task is in flight,
    /// carrying the black-box breadcrumb ring (most recent last).
    Beat { crumbs: Vec<Crumb> },
    /// A finished task.
    Result(TaskResult),
    /// Final telemetry flush at clean worker exit (spans/metrics that
    /// accrued after the last result, e.g. module compilation).
    Drain(Telemetry),
}

fn engine_code(e: EngineKind) -> u8 {
    match e {
        EngineKind::Pht => 0,
        EngineKind::Stl => 1,
        EngineKind::Psf => 2,
    }
}

fn engine_of(code: u8) -> Result<EngineKind, Corrupt> {
    Ok(match code {
        0 => EngineKind::Pht,
        1 => EngineKind::Stl,
        2 => EngineKind::Psf,
        _ => return Err(Corrupt),
    })
}

fn class_code(c: TransmitterClass) -> u8 {
    match c {
        TransmitterClass::Address => 0,
        TransmitterClass::Control => 1,
        TransmitterClass::Data => 2,
        TransmitterClass::UniversalControl => 3,
        TransmitterClass::UniversalData => 4,
    }
}

fn class_of(code: u8) -> Result<TransmitterClass, Corrupt> {
    Ok(match code {
        0 => TransmitterClass::Address,
        1 => TransmitterClass::Control,
        2 => TransmitterClass::Data,
        3 => TransmitterClass::UniversalControl,
        4 => TransmitterClass::UniversalData,
        _ => return Err(Corrupt),
    })
}

fn opt_u64(w: &mut W, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
    }
}

fn opt_u64_of(r: &mut R) -> Result<Option<u64>, Corrupt> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(Corrupt),
    }
}

fn encode_config(w: &mut W, c: &DetectorConfig) {
    w.u64(c.spec.rob_size as u64);
    w.u64(c.spec.lsq_size as u64);
    w.u64(c.spec.speculation_depth as u64);
    w.u64(c.window as u64);
    // u64::MAX = every class (the fingerprint uses the same sentinel).
    w.u64(c.target_class.map_or(u64::MAX, |tc| class_code(tc) as u64));
    w.bool(c.gep_filter);
    w.bool(c.universal_needs_transient_access);
    w.bool(c.secret_filter);
    w.bool(c.detect_interference);
    w.bool(c.disable_incremental);
    w.bool(c.disable_prefilter);
    opt_u64(w, c.budgets.timeout.map(|d| d.as_nanos() as u64));
    opt_u64(w, c.budgets.max_conflicts);
    opt_u64(w, c.budgets.max_saeg_nodes.map(|n| n as u64));
    opt_u64(w, c.budgets.max_saeg_edges.map(|n| n as u64));
    w.str(&c.faults.render());
}

fn decode_config(r: &mut R) -> Result<DetectorConfig, Corrupt> {
    let mut c = DetectorConfig::default();
    c.spec = SpeculationConfig {
        rob_size: r.u64()? as usize,
        lsq_size: r.u64()? as usize,
        speculation_depth: r.u64()? as usize,
    };
    c.window = r.u64()? as usize;
    c.target_class = match r.u64()? {
        u64::MAX => None,
        code => Some(class_of(u8::try_from(code).map_err(|_| Corrupt)?)?),
    };
    c.gep_filter = r.bool()?;
    c.universal_needs_transient_access = r.bool()?;
    c.secret_filter = r.bool()?;
    c.detect_interference = r.bool()?;
    c.disable_incremental = r.bool()?;
    c.disable_prefilter = r.bool()?;
    c.budgets = Budgets {
        timeout: opt_u64_of(r)?.map(Duration::from_nanos),
        max_conflicts: opt_u64_of(r)?,
        max_saeg_nodes: opt_u64_of(r)?.map(|n| n as usize),
        max_saeg_edges: opt_u64_of(r)?.map(|n| n as usize),
    };
    c.faults = FaultPlan::parse(&r.str()?).map_err(|_| Corrupt)?;
    // The worker analyzes exactly one function per task; intra-function
    // parallelism inside a crash-isolated child would only perturb
    // scheduling-dependent counters.
    c.jobs = 1;
    Ok(c)
}

fn encode_error(w: &mut W, e: &AnalysisError) {
    match e {
        AnalysisError::Timeout { budget_ms } => {
            w.u8(0);
            w.u64(*budget_ms);
        }
        AnalysisError::BudgetExceeded { kind } => {
            w.u8(1);
            w.u8(match kind {
                BudgetKind::SolverConflicts => 0,
                BudgetKind::SaegNodes => 1,
                BudgetKind::SaegEdges => 2,
            });
        }
        AnalysisError::MalformedIr { message } => {
            w.u8(2);
            w.str(message);
        }
        AnalysisError::WorkerPanic { message } => {
            w.u8(3);
            w.str(message);
        }
        AnalysisError::SolverAbort => w.u8(4),
    }
}

fn decode_error(r: &mut R) -> Result<AnalysisError, Corrupt> {
    Ok(match r.u8()? {
        0 => AnalysisError::Timeout {
            budget_ms: r.u64()?,
        },
        1 => AnalysisError::BudgetExceeded {
            kind: match r.u8()? {
                0 => BudgetKind::SolverConflicts,
                1 => BudgetKind::SaegNodes,
                2 => BudgetKind::SaegEdges,
                _ => return Err(Corrupt),
            },
        },
        2 => AnalysisError::MalformedIr { message: r.str()? },
        3 => AnalysisError::WorkerPanic { message: r.str()? },
        4 => AnalysisError::SolverAbort,
        _ => return Err(Corrupt),
    })
}

fn encode_timings(w: &mut W, t: &PhaseTimings) {
    for d in [
        t.acfg_build,
        t.saeg_build,
        t.encode,
        t.solve,
        t.classify,
        t.baseline,
        t.bh_enumerate,
        t.bh_execute,
        t.bh_witness,
        t.cache,
        t.other,
    ] {
        w.u64(d.as_nanos() as u64);
    }
    for v in [
        t.sat_queries,
        t.memo_hits,
        t.queries_avoided,
        t.prefilter_hits,
        t.solver_reuses,
        t.clauses_retained,
        t.cache_hits,
    ] {
        w.u64(v);
    }
}

fn decode_timings(r: &mut R) -> Result<PhaseTimings, Corrupt> {
    let mut t = PhaseTimings::default();
    for d in [
        &mut t.acfg_build,
        &mut t.saeg_build,
        &mut t.encode,
        &mut t.solve,
        &mut t.classify,
        &mut t.baseline,
        &mut t.bh_enumerate,
        &mut t.bh_execute,
        &mut t.bh_witness,
        &mut t.cache,
        &mut t.other,
    ] {
        *d = Duration::from_nanos(r.u64()?);
    }
    for v in [
        &mut t.sat_queries,
        &mut t.memo_hits,
        &mut t.queries_avoided,
        &mut t.prefilter_hits,
        &mut t.solver_reuses,
        &mut t.clauses_retained,
        &mut t.cache_hits,
    ] {
        *v = r.u64()?;
    }
    Ok(t)
}

/// Serializes a full [`FunctionReport`] — unlike the store's
/// `encode_clou`, degraded reports are legal here: their partial
/// findings are a lower bound the supervisor keeps (and never caches).
fn encode_report(w: &mut W, report: &FunctionReport) {
    w.str(&report.name);
    w.u64(report.saeg_size as u64);
    w.u64(report.runtime.as_nanos() as u64);
    encode_timings(w, &report.timings);
    match report.status.error() {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            encode_error(w, e);
        }
    }
    w.u32(report.transmitters.len() as u32);
    for f in &report.transmitters {
        codec::encode_finding(w, f);
    }
}

fn decode_report(r: &mut R) -> Result<FunctionReport, Corrupt> {
    let name = r.str()?;
    let saeg_size = r.u64()? as usize;
    let runtime = Duration::from_nanos(r.u64()?);
    let timings = decode_timings(r)?;
    let status = match r.u8()? {
        0 => FunctionStatus::Completed,
        1 => FunctionStatus::Degraded(decode_error(r)?),
        _ => return Err(Corrupt),
    };
    let n = r.u32()? as usize;
    let mut transmitters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        transmitters.push(codec::decode_finding(r)?);
    }
    Ok(FunctionReport {
        name,
        transmitters,
        saeg_size,
        runtime,
        timings,
        status,
        // The supervisor stamps the real disposition (hit/miss/bypass);
        // the worker has no cache to consult.
        cache: lcm_detect::CacheStatus::Bypass,
    })
}

fn encode_foreign_event(w: &mut W, e: &ForeignEvent) {
    w.u64(e.tid);
    w.str(&e.name);
    w.str(&e.cat);
    w.bool(e.begin);
    w.u64(e.ts_us);
    w.u32(e.args.len() as u32);
    for (k, v) in &e.args {
        w.str(k);
        match v {
            ArgValue::Str(s) => {
                w.u8(0);
                w.str(s);
            }
            ArgValue::U64(n) => {
                w.u8(1);
                w.u64(*n);
            }
        }
    }
}

fn decode_foreign_event(r: &mut R) -> Result<ForeignEvent, Corrupt> {
    let tid = r.u64()?;
    let name = r.str()?;
    let cat = r.str()?;
    let begin = r.bool()?;
    let ts_us = r.u64()?;
    let n = r.u32()? as usize;
    let mut args = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let k = r.str()?;
        let v = match r.u8()? {
            0 => ArgValue::Str(r.str()?),
            1 => ArgValue::U64(r.u64()?),
            _ => return Err(Corrupt),
        };
        args.push((k, v));
    }
    Ok(ForeignEvent {
        tid,
        name,
        cat,
        begin,
        ts_us,
        args,
    })
}

fn encode_metrics(w: &mut W, s: &MetricsSnapshot) {
    w.u32(s.metrics.len() as u32);
    for (name, help, value) in &s.metrics {
        w.str(name);
        w.str(help);
        match value {
            MetricValue::Counter(n) => {
                w.u8(1);
                w.u64(*n);
            }
            MetricValue::Gauge(v) => {
                w.u8(2);
                w.u64(*v as u64);
            }
            MetricValue::Histogram(h) => {
                w.u8(3);
                w.u32(h.bounds.len() as u32);
                for b in &h.bounds {
                    w.u64(b.to_bits());
                }
                w.u32(h.counts.len() as u32);
                for c in &h.counts {
                    w.u64(*c);
                }
                w.u64(h.sum_secs.to_bits());
                w.u64(h.count);
            }
        }
    }
}

fn decode_metrics(r: &mut R) -> Result<MetricsSnapshot, Corrupt> {
    let n = r.u32()? as usize;
    let mut metrics = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let name = r.str()?;
        let help = r.str()?;
        let value = match r.u8()? {
            1 => MetricValue::Counter(r.u64()?),
            2 => MetricValue::Gauge(r.u64()? as i64),
            3 => {
                let nb = r.u32()? as usize;
                let mut bounds = Vec::with_capacity(nb.min(64));
                for _ in 0..nb {
                    bounds.push(f64::from_bits(r.u64()?));
                }
                let nc = r.u32()? as usize;
                let mut counts = Vec::with_capacity(nc.min(64));
                for _ in 0..nc {
                    counts.push(r.u64()?);
                }
                let sum_secs = f64::from_bits(r.u64()?);
                let count = r.u64()?;
                MetricValue::Histogram(HistogramSnapshot {
                    bounds,
                    counts,
                    sum_secs,
                    count,
                })
            }
            _ => return Err(Corrupt),
        };
        metrics.push((name, help, value));
    }
    Ok(MetricsSnapshot { metrics })
}

fn encode_telemetry(w: &mut W, t: &Telemetry) {
    w.u32(t.spans.len() as u32);
    for e in &t.spans {
        encode_foreign_event(w, e);
    }
    encode_metrics(w, &t.metrics);
}

fn decode_telemetry(r: &mut R) -> Result<Telemetry, Corrupt> {
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        spans.push(decode_foreign_event(r)?);
    }
    let metrics = decode_metrics(r)?;
    Ok(Telemetry { spans, metrics })
}

fn encode_crumbs(w: &mut W, crumbs: &[Crumb]) {
    w.u32(crumbs.len() as u32);
    for c in crumbs {
        w.u64(c.task_id);
        w.str(&c.fn_name);
        w.u8(match c.phase {
            CrumbPhase::Received => 0,
            CrumbPhase::Analyzing => 1,
            CrumbPhase::Done => 2,
        });
        w.u64(c.ts_us);
    }
}

fn decode_crumbs(r: &mut R) -> Result<Vec<Crumb>, Corrupt> {
    let n = r.u32()? as usize;
    let mut crumbs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        crumbs.push(Crumb {
            task_id: r.u64()?,
            fn_name: r.str()?,
            phase: match r.u8()? {
                0 => CrumbPhase::Received,
                1 => CrumbPhase::Analyzing,
                2 => CrumbPhase::Done,
                _ => return Err(Corrupt),
            },
            ts_us: r.u64()?,
        });
    }
    Ok(crumbs)
}

impl ToWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new();
        match self {
            ToWorker::Module { id, source } => {
                w.u8(1);
                w.u64(*id);
                w.str(source);
            }
            ToWorker::Task(t) => {
                w.u8(2);
                w.u64(t.task_id);
                w.u64(t.module_id);
                w.u64(t.fn_index);
                w.str(&t.fn_name);
                w.u8(engine_code(t.engine));
                encode_config(&mut w, &t.config);
                w.bool(t.trace);
                w.u64(t.worker_slot);
                w.u64(t.fingerprint.0);
                w.u64(t.fingerprint.1);
                w.bool(t.stolen);
            }
        }
        w.0
    }

    pub fn decode(body: &[u8]) -> Result<Self, Corrupt> {
        let mut r = R::new(body);
        let msg = match r.u8()? {
            1 => ToWorker::Module {
                id: r.u64()?,
                source: r.str()?,
            },
            2 => ToWorker::Task(Task {
                task_id: r.u64()?,
                module_id: r.u64()?,
                fn_index: r.u64()?,
                fn_name: r.str()?,
                engine: engine_of(r.u8()?)?,
                config: decode_config(&mut r)?,
                trace: r.bool()?,
                worker_slot: r.u64()?,
                fingerprint: (r.u64()?, r.u64()?),
                stolen: r.bool()?,
            }),
            _ => return Err(Corrupt),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl FromWorker {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W::new();
        match self {
            FromWorker::Hello { pid, now_us } => {
                w.u8(1);
                w.u64(*pid);
                w.u64(*now_us);
            }
            FromWorker::Beat { crumbs } => {
                w.u8(2);
                encode_crumbs(&mut w, crumbs);
            }
            FromWorker::Result(res) => {
                w.u8(3);
                w.u64(res.task_id);
                encode_report(&mut w, &res.report);
                match &res.telemetry {
                    None => w.u8(0),
                    Some(t) => {
                        w.u8(1);
                        encode_telemetry(&mut w, t);
                    }
                }
            }
            FromWorker::Drain(t) => {
                w.u8(4);
                encode_telemetry(&mut w, t);
            }
        }
        w.0
    }

    pub fn decode(body: &[u8]) -> Result<Self, Corrupt> {
        let mut r = R::new(body);
        let msg = match r.u8()? {
            1 => FromWorker::Hello {
                pid: r.u64()?,
                now_us: r.u64()?,
            },
            2 => FromWorker::Beat {
                crumbs: decode_crumbs(&mut r)?,
            },
            3 => FromWorker::Result(TaskResult {
                task_id: r.u64()?,
                report: decode_report(&mut r)?,
                telemetry: match r.u8()? {
                    0 => None,
                    1 => Some(decode_telemetry(&mut r)?),
                    _ => return Err(Corrupt),
                },
            }),
            4 => FromWorker::Drain(decode_telemetry(&mut r)?),
            _ => return Err(Corrupt),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::fault::site;

    fn sample_config() -> DetectorConfig {
        let mut c = DetectorConfig::default();
        c.window = 99;
        c.target_class = Some(TransmitterClass::UniversalData);
        c.secret_filter = true;
        c.budgets.timeout = Some(Duration::from_millis(1500));
        c.budgets.max_conflicts = Some(4096);
        c.faults = FaultPlan::default().arm(site::WORKER_PANIC, Some(1));
        c
    }

    #[test]
    fn task_round_trips() {
        let msg = ToWorker::Task(Task {
            task_id: 7,
            module_id: 3,
            fn_index: 2,
            fn_name: "victim".into(),
            engine: EngineKind::Stl,
            config: sample_config(),
            trace: true,
            worker_slot: 5,
            fingerprint: (0xdead_beef, 0xcafe),
            stolen: true,
        });
        let body = msg.encode();
        let ToWorker::Task(t) = ToWorker::decode(&body).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(t.task_id, 7);
        assert_eq!(t.fn_name, "victim");
        assert_eq!(t.engine, EngineKind::Stl);
        assert_eq!(t.config.window, 99);
        assert_eq!(t.config.target_class, Some(TransmitterClass::UniversalData));
        assert_eq!(t.config.budgets.timeout, Some(Duration::from_millis(1500)));
        assert_eq!(t.config.budgets.max_conflicts, Some(4096));
        assert!(t.config.faults.fires(site::WORKER_PANIC, 1));
        assert_eq!(t.config.jobs, 1, "workers always run serial");
        assert!(t.trace);
        assert_eq!(t.worker_slot, 5);
        assert_eq!(t.fingerprint, (0xdead_beef, 0xcafe));
        assert!(t.stolen);
    }

    #[test]
    fn module_round_trips() {
        let msg = ToWorker::Module {
            id: 5,
            source: "int x;".into(),
        };
        let ToWorker::Module { id, source } = ToWorker::decode(&msg.encode()).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!((id, source.as_str()), (5, "int x;"));
    }

    #[test]
    fn degraded_result_round_trips_with_partial_findings() {
        use lcm_detect::CacheStatus;
        // A degraded report that still carries findings (the governor
        // tripping mid-run keeps what it found): the fleet codec must
        // ship both, which the store's encode_clou refuses.
        let mut report = FunctionReport::degraded(
            "victim".into(),
            AnalysisError::BudgetExceeded {
                kind: BudgetKind::SaegNodes,
            },
        );
        report.saeg_size = 41;
        let msg = FromWorker::Result(TaskResult {
            task_id: 9,
            report,
            telemetry: None,
        });
        let FromWorker::Result(res) = FromWorker::decode(&msg.encode()).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(res.task_id, 9);
        assert_eq!(res.report.saeg_size, 41);
        assert_eq!(res.report.cache, CacheStatus::Bypass);
        assert_eq!(
            res.report.status.error().map(|e| e.to_string()),
            Some("budget exceeded: S-AEG nodes".into())
        );
    }

    fn sample_telemetry() -> Telemetry {
        Telemetry {
            spans: vec![
                ForeignEvent {
                    tid: 1,
                    name: "task".into(),
                    cat: "fleet".into(),
                    begin: true,
                    ts_us: 100,
                    args: vec![
                        ("fn".into(), ArgValue::Str("victim".into())),
                        ("worker".into(), ArgValue::U64(2)),
                    ],
                },
                ForeignEvent {
                    tid: 1,
                    name: "task".into(),
                    cat: "fleet".into(),
                    begin: false,
                    ts_us: 250,
                    args: Vec::new(),
                },
            ],
            metrics: MetricsSnapshot {
                metrics: vec![
                    (
                        "lcm_sat_queries_total".into(),
                        "queries".into(),
                        MetricValue::Counter(17),
                    ),
                    (
                        "lcm_solve_latency_seconds".into(),
                        "latency".into(),
                        MetricValue::Histogram(HistogramSnapshot {
                            bounds: vec![0.01, 0.1],
                            counts: vec![3, 1, 0],
                            sum_secs: 0.0625,
                            count: 4,
                        }),
                    ),
                ],
            },
        }
    }

    #[test]
    fn telemetry_round_trips_on_result_hello_beat_and_drain() {
        // Hello carries the clock sample for re-basing.
        let FromWorker::Hello { pid, now_us } = FromWorker::decode(
            &FromWorker::Hello {
                pid: 42,
                now_us: 777,
            }
            .encode(),
        )
        .unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!((pid, now_us), (42, 777));
        // Beat carries the breadcrumb ring.
        let crumbs = vec![
            Crumb {
                task_id: 3,
                fn_name: "victim_a".into(),
                phase: CrumbPhase::Done,
                ts_us: 10,
            },
            Crumb {
                task_id: 4,
                fn_name: "victim_b".into(),
                phase: CrumbPhase::Analyzing,
                ts_us: 20,
            },
        ];
        let FromWorker::Beat { crumbs: got } = FromWorker::decode(
            &FromWorker::Beat {
                crumbs: crumbs.clone(),
            }
            .encode(),
        )
        .unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(got, crumbs);
        assert_eq!(got[1].phase.as_str(), "analyzing");
        // Result carries optional telemetry, bit-exact (f64 ships as
        // raw bits, so histogram sums survive).
        let telemetry = sample_telemetry();
        let msg = FromWorker::Result(TaskResult {
            task_id: 9,
            report: FunctionReport::degraded("victim".into(), AnalysisError::SolverAbort),
            telemetry: Some(telemetry.clone()),
        });
        let FromWorker::Result(res) = FromWorker::decode(&msg.encode()).unwrap() else {
            panic!("wrong tag");
        };
        assert_eq!(res.telemetry, Some(telemetry.clone()));
        // Drain is a bare telemetry frame.
        let FromWorker::Drain(got) =
            FromWorker::decode(&FromWorker::Drain(telemetry.clone()).encode()).unwrap()
        else {
            panic!("wrong tag");
        };
        assert_eq!(got, telemetry);
    }

    #[test]
    fn every_truncation_is_corrupt_not_panic() {
        let body = ToWorker::Task(Task {
            task_id: 1,
            module_id: 1,
            fn_index: 0,
            fn_name: "f".into(),
            engine: EngineKind::Pht,
            config: sample_config(),
            trace: true,
            worker_slot: 0,
            fingerprint: (1, 2),
            stolen: false,
        })
        .encode();
        for cut in 0..body.len() {
            assert!(ToWorker::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
        // Telemetry-bearing frames are total too.
        let body = FromWorker::Drain(sample_telemetry()).encode();
        for cut in 0..body.len() {
            assert!(FromWorker::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
        let body = FromWorker::Beat {
            crumbs: vec![Crumb {
                task_id: 1,
                fn_name: "f".into(),
                phase: CrumbPhase::Received,
                ts_us: 5,
            }],
        }
        .encode();
        for cut in 0..body.len() {
            assert!(FromWorker::decode(&body[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn frame_layer_round_trips_and_detects_tears() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // A torn frame (length says 5, only 2 bytes arrive) is an error,
        // not a silent EOF.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"hello").unwrap();
        torn.truncate(6);
        let mut r = &torn[..];
        assert!(read_frame(&mut r).is_err());
    }
}
