//! The worker-process side of the fleet.
//!
//! A worker is a child process speaking [`crate::proto`] over its
//! stdin/stdout: it receives a module's source, compiles it, then
//! analyzes one function per task with a serial (`jobs = 1`) detector.
//! Analysis panics are caught and shipped back as the same
//! `WorkerPanic` degradation the in-process `map_indexed_catch` path
//! produces — crash isolation changes *where* a panic is caught, never
//! what the caller sees.
//!
//! A detached heartbeat thread writes [`FromWorker::Beat`] frames while
//! a task is in flight, so the supervisor can tell a long-running
//! analysis (beating, leave it alone until its deadline) from a wedged
//! process (silent, kill it at the heartbeat grace).
//!
//! The three `fleet.*` fault sites live here: `fleet.worker_crash`
//! SIGKILLs the process mid-task, `fleet.worker_hang` goes silent and
//! stalls, `fleet.task_torn` ships half a result frame and exits. All
//! three are first-attempt-only in practice because the supervisor
//! strips `fleet.*` specs from redelivered tasks.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lcm_core::fault::site;
use lcm_core::govern::AnalysisError;
use lcm_core::par::panic_message;
use lcm_detect::{Detector, FunctionReport};
use lcm_ir::Module;
use lcm_obs::metrics::MetricsSnapshot;
use lcm_obs::trace;

use crate::proto::{self, Crumb, CrumbPhase, FromWorker, Task, TaskResult, Telemetry, ToWorker};

/// Environment marker the supervisor sets on worker children. A binary
/// that may host workers calls [`maybe_run_worker`] first thing in
/// `main`; seeing this variable, it becomes the worker loop instead of
/// its normal self.
pub const WORKER_ENV: &str = "LCM_FLEET_WORKER";

/// How often a busy worker beats. The supervisor's grace period is a
/// config knob several multiples of this.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(25);

/// Breadcrumbs the black-box ring retains (most recent last). Small on
/// purpose: it rides every heartbeat frame.
pub const CRUMB_RING: usize = 8;

/// The black-box breadcrumb ring, shared between the task loop (which
/// pushes phase marks) and the heartbeat thread (which mirrors the
/// ring to the supervisor on every beat).
#[derive(Clone, Default)]
struct CrumbRing(Arc<Mutex<Vec<Crumb>>>);

impl CrumbRing {
    fn push(&self, task: &Task, phase: CrumbPhase) {
        let mut ring = self.0.lock().unwrap();
        if ring.len() == CRUMB_RING {
            ring.remove(0);
        }
        ring.push(Crumb {
            task_id: task.task_id,
            fn_name: task.fn_name.clone(),
            phase,
            ts_us: trace::clock_us(),
        });
    }

    fn snapshot(&self) -> Vec<Crumb> {
        self.0.lock().unwrap().clone()
    }
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
}

const SIGKILL: i32 = 9;

/// If this process was spawned as a fleet worker (the [`WORKER_ENV`]
/// marker is set), run the worker loop and exit — never returns in that
/// case. Host binaries (`lcm-cli`, the bench binaries) call this before
/// any argument parsing.
pub fn maybe_run_worker() {
    if std::env::var_os(WORKER_ENV).is_some() {
        worker_main();
    }
}

/// The worker loop over this process's stdin/stdout; exits the process
/// when the supervisor closes the pipe. This is also the body of the
/// hidden `lcm-cli worker` subcommand.
pub fn worker_main() -> ! {
    let code = run_worker(&mut io::stdin().lock());
    std::process::exit(code);
}

fn write_msg(out: &Mutex<io::Stdout>, msg: &FromWorker) -> io::Result<()> {
    let mut out = out.lock().unwrap();
    proto::write_frame(&mut *out, &msg.encode())
}

/// The worker's telemetry state: the last-shipped metrics snapshot,
/// so each result frame carries only the delta since the previous one.
struct TelemetryState {
    last_metrics: MetricsSnapshot,
}

impl TelemetryState {
    /// Collects everything that accrued since the last collection:
    /// buffered spans (when tracing ran) and the metrics delta.
    /// Returns `None` when both are empty, so untraced idle tasks ship
    /// no telemetry bytes at all.
    fn collect(&mut self) -> Option<Telemetry> {
        let spans = if trace::is_enabled() {
            trace::drain_local_events()
        } else {
            Vec::new()
        };
        let cur = lcm_obs::metrics::global().snapshot();
        let metrics = cur.delta_since(&self.last_metrics);
        self.last_metrics = cur;
        if spans.is_empty() && metrics.metrics.is_empty() {
            return None;
        }
        Some(Telemetry { spans, metrics })
    }
}

fn run_worker(input: &mut impl Read) -> i32 {
    let out = Arc::new(Mutex::new(io::stdout()));
    let busy = Arc::new(AtomicBool::new(false));
    let crumbs = CrumbRing::default();
    {
        // Heartbeat thread: beats only while a task is in flight (an
        // idle fleet must not fill the supervisor's event queue). A
        // failed write means the supervisor is gone — nothing left to
        // beat for. Each beat mirrors the breadcrumb ring.
        let out = Arc::clone(&out);
        let busy = Arc::clone(&busy);
        let crumbs = crumbs.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(HEARTBEAT_INTERVAL);
            if busy.load(Ordering::Relaxed) {
                let beat = FromWorker::Beat {
                    crumbs: crumbs.snapshot(),
                };
                if write_msg(&out, &beat).is_err() {
                    std::process::exit(0);
                }
            }
        });
    }
    let pid = unsafe { getpid() } as u64;
    let hello = FromWorker::Hello {
        pid,
        now_us: trace::clock_us(),
    };
    if write_msg(&out, &hello).is_err() {
        return 1;
    }

    let mut telemetry = TelemetryState {
        last_metrics: lcm_obs::metrics::global().snapshot(),
    };
    // The current module: compiled once per `Module` frame, reused by
    // every subsequent task. A compile error is remembered so tasks
    // against the broken module degrade instead of wedging.
    let mut module: Option<(u64, Result<Module, String>)> = None;
    loop {
        let body = match proto::read_frame(input) {
            Ok(Some(body)) => body,
            Ok(None) => {
                // Supervisor closed our stdin: flush whatever telemetry
                // accrued after the last result (module compiles,
                // stray metrics), then exit cleanly. A dead supervisor
                // ignores the write error.
                if let Some(t) = telemetry.collect() {
                    let _ = write_msg(&out, &FromWorker::Drain(t));
                }
                return 0;
            }
            Err(_) => return 1,
        };
        let Ok(msg) = ToWorker::decode(&body) else {
            return 1;
        };
        match msg {
            ToWorker::Module { id, source } => {
                let compiled = lcm_minic::compile(&source).map_err(|e| e.to_string());
                module = Some((id, compiled));
            }
            ToWorker::Task(task) => {
                busy.store(true, Ordering::Relaxed);
                let ok = handle_task(&out, &busy, &crumbs, &mut telemetry, &module, task);
                busy.store(false, Ordering::Relaxed);
                if !ok {
                    return 1;
                }
            }
        }
    }
}

fn handle_task(
    out: &Mutex<io::Stdout>,
    busy: &AtomicBool,
    crumbs: &CrumbRing,
    telemetry: &mut TelemetryState,
    module: &Option<(u64, Result<Module, String>)>,
    task: Task,
) -> bool {
    crumbs.push(&task, CrumbPhase::Received);
    // The supervisor decides per dispatch whether this worker records
    // spans (it follows the run's `--trace-out`). Enabling is sticky
    // until a task says otherwise, so a mixed sequence stays correct.
    if task.trace {
        trace::enable();
    } else {
        trace::disable();
    }
    let idx = task.fn_index as usize;
    let faults = &task.config.faults;
    if faults.fires(site::FLEET_WORKER_CRASH, idx) {
        // Die the hard way: no unwinding, no cleanup, no exit status
        // ambiguity — exactly what a segfaulting worker looks like.
        unsafe { kill(getpid(), SIGKILL) };
        loop {
            std::thread::sleep(Duration::from_secs(1));
        }
    }
    if faults.fires(site::FLEET_WORKER_HANG, idx) {
        // A frozen process: silence the heartbeat thread, ship no
        // result, never exit. The supervisor's stuck-output detection
        // (heartbeat grace) — or the task deadline, whichever is
        // tighter — reaps us.
        busy.store(false, Ordering::Relaxed);
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    crumbs.push(&task, CrumbPhase::Analyzing);
    let mut task_span = trace::span("task", "fleet");
    if trace::is_enabled() {
        task_span.arg_str("fn", &task.fn_name);
        task_span.arg_str("engine", task.engine.label());
        task_span.arg_u64("worker", task.worker_slot);
        task_span.arg_str(
            "fingerprint",
            &format!("{:016x}{:016x}", task.fingerprint.0, task.fingerprint.1),
        );
        task_span.arg_str("dispatch", if task.stolen { "stolen" } else { "owned" });
    }
    let report = match module {
        Some((id, Ok(m))) if *id == task.module_id => {
            let det = Detector::new(task.config.clone());
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                det.analyze_function(m, &task.fn_name, task.engine)
            }))
            .unwrap_or_else(|p| {
                FunctionReport::degraded(
                    task.fn_name.clone(),
                    AnalysisError::WorkerPanic {
                        message: panic_message(p.as_ref()),
                    },
                )
            })
        }
        Some((id, Err(msg))) if *id == task.module_id => FunctionReport::degraded(
            task.fn_name.clone(),
            AnalysisError::MalformedIr {
                message: msg.clone(),
            },
        ),
        _ => FunctionReport::degraded(
            task.fn_name.clone(),
            AnalysisError::WorkerPanic {
                message: "fleet: task for a module this worker never received".into(),
            },
        ),
    };

    drop(task_span);
    crumbs.push(&task, CrumbPhase::Done);
    let body = FromWorker::Result(TaskResult {
        task_id: task.task_id,
        report,
        // Metrics ship whether or not spans were recorded: aggregation
        // must not depend on tracing being on.
        telemetry: telemetry.collect(),
    })
    .encode();
    if faults.fires(site::FLEET_TASK_TORN, idx) {
        // Ship the length prefix and half the body, then die: the
        // supervisor's reader sees EOF mid-frame — a torn frame, not a
        // clean shutdown — and redelivers the task elsewhere.
        let mut o = out.lock().unwrap();
        let _ = o.write_all(&(body.len() as u32).to_le_bytes());
        let _ = o.write_all(&body[..body.len() / 2]);
        let _ = o.flush();
        std::process::exit(1);
    }
    let mut o = out.lock().unwrap();
    proto::write_frame(&mut *o, &body).is_ok()
}
