//! The subrosa scenario (§3.4): exhaustively enumerate candidate
//! executions of classic litmus tests under SC and TSO, then enumerate
//! microarchitectural witnesses under a confidentiality predicate and
//! count the leaky ones.
//!
//! Run with: `cargo run --example litmus_models`

use lcm::core::confidentiality::X86Lcm;
use lcm::core::exec::ExecutionBuilder;
use lcm::core::mcm::{Sc, Tso};
use lcm::core::{noninterference, EventId};
use lcm::litmus::enumerate::{microarch_witnesses, Litmus, Op};

fn main() {
    println!("== Architectural semantics: consistent candidate executions ==\n");
    let tests: Vec<(&str, Litmus)> = vec![
        (
            "SB  (Wx;Ry || Wy;Rx)",
            Litmus::new(vec![
                vec![Op::w("x"), Op::r("y")],
                vec![Op::w("y"), Op::r("x")],
            ]),
        ),
        (
            "SB+fences",
            Litmus::new(vec![
                vec![Op::w("x"), Op::F, Op::r("y")],
                vec![Op::w("y"), Op::F, Op::r("x")],
            ]),
        ),
        (
            "MP  (Wx;Wy || Ry;Rx)",
            Litmus::new(vec![
                vec![Op::w("x"), Op::w("y")],
                vec![Op::r("y"), Op::r("x")],
            ]),
        ),
        (
            "CoRW (Wx;Wx || Rx)",
            Litmus::new(vec![vec![Op::w("x"), Op::w("x")], vec![Op::r("x")]]),
        ),
    ];
    println!(
        "{:<22} {:>10} {:>6} {:>6}",
        "litmus", "candidates", "SC", "TSO"
    );
    println!("{}", "-".repeat(48));
    for (name, l) in &tests {
        let all = l.candidate_executions().len();
        let sc = l.consistent_executions(&Sc).len();
        let tso = l.consistent_executions(&Tso).len();
        println!("{name:<22} {all:>10} {sc:>6} {tso:>6}");
        assert!(sc <= tso, "TSO is weaker than SC");
    }

    println!("\n== Microarchitectural semantics: witnesses of R x; W x ==\n");
    let make = |rfx: &[(EventId, EventId)], cox: &[(EventId, EventId)]| {
        let mut b = ExecutionBuilder::new();
        let r = b.read("x");
        let w = b.write("x");
        b.po(r, w);
        for &(a, c) in rfx {
            b.rfx(a, c);
        }
        for &(a, c) in cox {
            b.cox(a, c);
        }
        b.build()
    };
    let template = make(&[], &[]);
    let witnesses = microarch_witnesses(&template, &X86Lcm, &make);
    let clean = witnesses
        .iter()
        .filter(|x| noninterference::interference_free(x))
        .count();
    println!(
        "witnesses permitted by the x86 LCM: {} ({} interference-free, {} leaking)",
        witnesses.len(),
        clean,
        witnesses.len() - clean
    );
    for x in witnesses.iter().take(4) {
        let vs = noninterference::violations(x);
        println!(
            "  rfx={:?} violations={}",
            x.rfx().pairs().collect::<Vec<_>>(),
            vs.len()
        );
    }
}
