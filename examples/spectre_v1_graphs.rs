//! Regenerates the Fig. 1 / Fig. 2 artifacts: the Spectre v1 event
//! structures and the speculative-semantics candidate execution with its
//! dashed (leaking) `rf` edges, as Graphviz DOT.
//!
//! Run with: `cargo run --example spectre_v1_graphs`
//! Pipe any of the DOT blocks into `dot -Tpdf` to render.

use lcm::core::detect_leakage;
use lcm::core::exec::ExecutionBuilder;
use lcm::core::mcm::{ConsistencyModel, Tso};
use lcm::litmus::programs;

fn main() {
    // --- Fig. 1c: the not-taken event structure / candidate execution ---
    let mut b = ExecutionBuilder::new();
    let r1 = b.read("size");
    b.set_label(r1, "1: R size -> r1");
    let r2 = b.read("y");
    b.set_label(r2, "2: R y -> r2");
    b.po(r1, r2);
    let not_taken = b.build();
    assert!(Tso.check(&not_taken).is_ok());
    println!("// Fig. 1c — not-taken candidate execution");
    println!("{}", not_taken.to_dot("fig1c_not_taken", &[]));

    // --- Fig. 1d: the taken event structure / candidate execution ---
    let mut b = ExecutionBuilder::new();
    let r1 = b.read("size");
    b.set_label(r1, "1: R size -> r1");
    let r2 = b.read("y");
    b.set_label(r2, "2: R y -> r2");
    let r5 = b.read("A+r2");
    b.set_label(r5, "5: R A+r2 -> r4");
    let r6 = b.read("B+r4");
    b.set_label(r6, "6: R B+r4 -> r5");
    let w7 = b.write("tmp");
    b.set_label(w7, "7: W tmp <- tmp & r5");
    b.po_chain(&[r1, r2, r5, r6, w7]);
    b.ctrl(r1, r5).ctrl(r1, r6).ctrl(r1, w7);
    b.ctrl(r2, r5).ctrl(r2, r6).ctrl(r2, w7);
    b.addr_gep(r2, r5).addr_gep(r5, r6);
    b.data(r6, w7);
    let taken = b.build();
    assert!(Tso.check(&taken).is_ok());
    println!("// Fig. 1d — taken candidate execution (dep edges shown)");
    println!("{}", taken.to_dot("fig1d_taken", &[]));

    // --- Fig. 2b: speculative semantics with leakage ---
    let (exec, ids) = programs::spectre_v1();
    let report = detect_leakage(&exec);
    println!("// Fig. 2b — speculative semantics; dashed edges = leakage");
    println!(
        "{}",
        exec.to_dot("fig2b_spectre_v1", &report.culprit_edges())
    );

    println!("// Transmitters (most severe per event):");
    for t in report.summary() {
        println!(
            "//   {} [{}] transient={} access={:?} index={:?}",
            exec.event(t.event),
            t.class,
            t.transient,
            t.access.map(|a| exec.event(a).to_string()),
            t.index.map(|i| exec.event(i).to_string()),
        );
    }
    assert!(report
        .summary()
        .iter()
        .any(|t| t.event == ids.e6s && t.class == lcm::core::TransmitterClass::UniversalData));
}
