//! Regenerates Table 1: the transmitter taxonomy with its leakage
//! patterns and severity partial order, demonstrated on the worked attacks
//! of §4.2.
//!
//! Run with: `cargo run --example taxonomy_table`

use lcm::core::detect_leakage;
use lcm::core::TransmitterClass;
use lcm::litmus::programs;

fn main() {
    println!("Table 1 — transmitter taxonomy for cache xstate\n");
    println!("{:<18} Leakage Pattern", "Transmitter Type");
    println!("{}", "-".repeat(72));
    for (class, pattern) in [
        (TransmitterClass::Address, "transmit -rfx-> receiver"),
        (
            TransmitterClass::Data,
            "access -addr-> transmit -rfx-> receiver",
        ),
        (
            TransmitterClass::Control,
            "access -ctrl-> transmit -rfx-> receiver",
        ),
        (
            TransmitterClass::UniversalData,
            "index -addr-> access -addr-> transmit -rfx-> receiver",
        ),
        (
            TransmitterClass::UniversalControl,
            "index -addr-> access -ctrl-> transmit -rfx-> receiver",
        ),
    ] {
        println!("{:<18} {}", class.to_string(), pattern);
    }
    println!("\nSeverity partial order: AT < CT < {{DT, UCT}} < UDT");
    assert!(
        TransmitterClass::Data
            .compare_severity(TransmitterClass::UniversalControl)
            .is_none(),
        "DT and UCT are incomparable"
    );

    println!("\nClassification of the paper's worked attacks:\n");
    let attacks: Vec<(&str, lcm::core::Execution)> = vec![
        ("Spectre v1 (Fig 2b)", programs::spectre_v1().0),
        ("Spectre v1 variant (Fig 3)", programs::spectre_v1_var().0),
        ("Spectre v4 (Fig 4a)", programs::spectre_v4().0),
        ("Spectre-PSF (Fig 4b)", programs::spectre_psf().0),
        ("Silent stores (Fig 5a)", programs::silent_stores().0),
        ("IMP prefetch (Fig 5b)", programs::imp_prefetch().0),
    ];
    for (name, exec) in attacks {
        let report = detect_leakage(&exec);
        print!("{name:<28}");
        let mut summary = report.summary();
        summary.sort_by_key(|t| std::cmp::Reverse(t.class.severity_rank()));
        let items: Vec<String> = summary
            .iter()
            .map(|t| {
                format!(
                    "{}{}[{}]",
                    exec.event(t.event),
                    if t.transient { "ₛ" } else { "" },
                    t.class
                )
            })
            .collect();
        println!("{}", items.join(", "));
    }
}
