//! Regenerates the Fig. 7 artifact: the symbolic abstract event graph Clou
//! builds for the Spectre v1 program, with `addr`/`addr_gep`/`data`/`ctrl`
//! edges and branch (speculation-primitive) nodes, as Graphviz DOT.
//!
//! Run with: `cargo run --example saeg_dump`

use lcm::aeg::Saeg;
use lcm::core::speculation::SpeculationConfig;

fn main() {
    let src = r#"
        int A[16]; int B[256]; int size_A; int tmp;
        void victim(int y) {
            if (y < size_A) {
                tmp &= B[A[y]];
            }
        }
    "#;
    let module = lcm::minic::compile(src).expect("compiles");
    let saeg = Saeg::build(&module, "victim", SpeculationConfig::default()).expect("S-AEG");

    println!(
        "// Fig. 7 — S-AEG for Spectre v1 ({} events, {} branches)",
        saeg.events.len(),
        saeg.branches.len()
    );
    println!("{}", saeg.to_dot());

    // The speculation windows the PHT engine will consider.
    for (i, br) in saeg.branches.iter().enumerate() {
        for (side, name) in [(true, "then"), (false, "else")] {
            let w = saeg.spec_window(br, side);
            println!(
                "// branch {i} mispredicted toward {name}: {} transiently fetchable events",
                w.len()
            );
        }
    }
}
