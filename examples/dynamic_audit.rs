//! Dynamic LCM analysis (extension): record a concrete run, lift the
//! trace to a candidate execution with a simulated cache, and apply the
//! §4.1 leakage definition — catching *non-transient* leakage such as
//! AES-style T-table lookups, which Spectre-focused engines do not target.
//!
//! Run with: `cargo run --example dynamic_audit`

use lcm::aeg::trace::execution_from_trace;
use lcm::core::{detect_leakage, TransmitterClass};
use lcm::ir::interp::Machine;

fn audit(name: &str, src: &str, fname: &str, args: &[i64], secrets: &[(&str, u32, i64)]) {
    let module = lcm::minic::compile(src).expect("compiles");
    let mut mach = Machine::new(&module);
    for &(g, i, v) in secrets {
        mach.set_global(g, i, v);
    }
    let (_, trace) = mach.call_traced(fname, args, 1_000_000).expect("runs");
    let exec = execution_from_trace(&module, &trace);
    let report = detect_leakage(&exec);
    let summary = report.summary();
    let data_leaks = summary
        .iter()
        .filter(|t| t.class.severity_rank() >= TransmitterClass::Data.severity_rank())
        .count();
    let ctrl_leaks = summary
        .iter()
        .filter(|t| t.class == TransmitterClass::Control)
        .count();
    let verdict = if data_leaks > 0 {
        "LEAKS DATA-DEPENDENT STATE"
    } else if ctrl_leaks > 0 {
        "leaks branch outcomes (CT)"
    } else {
        "constant-time"
    };
    println!(
        "{name:<28} {:>4} trace events, {:>3} receivers, {:>2} DT+, {:>2} CT  => {verdict}",
        trace.len(),
        report.receivers.len(),
        data_leaks,
        ctrl_leaks,
    );
}

fn main() {
    println!("Dynamic (trace-level) LCM audit — non-transient leakage, §4\n");

    // AES-style T-table round: the classic non-constant-time pattern.
    audit(
        "aes-ttable-round",
        r#"
        int sbox[256]; int sec_key[4]; int out;
        void round(int s) {
            out = sbox[(s ^ sec_key[0]) & 255]
                ^ sbox[(s ^ sec_key[1]) & 255];
        }"#,
        "round",
        &[0x42],
        &[("sec_key", 0, 0x5a), ("sec_key", 1, 0xc3)],
    );

    // Branch on secret: the lookup index is fixed but which line is
    // touched depends on the secret-controlled branch.
    audit(
        "branch-on-secret",
        r#"
        int sec_flag; int a; int b; int out;
        void f(void) {
            if (sec_flag) { out = a; } else { out = b; }
        }"#,
        "f",
        &[],
        &[("sec_flag", 0, 1)],
    );

    // tea round: constant-time by construction.
    audit(
        "tea-round (constant-time)",
        r#"
        uint32_t vv; uint32_t k0; uint32_t k1;
        void ct(void) {
            uint32_t v = vv;
            v += ((v << 4) + k0) ^ ((v >> 5) + k1);
            vv = v;
        }"#,
        "ct",
        &[],
        &[("k0", 0, 123), ("k1", 0, 456)],
    );
}
