//! Quickstart: compile a Spectre v1 victim, detect its leakage, repair it
//! with a fence, and confirm the repair.
//!
//! Run with: `cargo run --example quickstart`

use lcm::detect::{describe, repair, witness_dot, Detector, DetectorConfig, EngineKind};

fn main() {
    let src = r#"
        int array1[16]; int array2[4096]; int array1_size; int temp;
        void victim(int x) {
            if (x < array1_size)
                temp &= array2[array1[x] * 512];
        }
    "#;

    println!("== Source ==\n{src}");
    let module = lcm::minic::compile(src).expect("compiles");

    let det = Detector::new(DetectorConfig::default());
    let report = det.analyze_module(&module, EngineKind::Pht);

    println!("== Clou-pht findings ==");
    for f in report.findings() {
        println!(
            "  {}: {} at inst %{} (transient: {}, access transient: {}) via {}",
            f.function,
            f.class,
            f.transmitter_inst.0,
            f.transient_transmitter,
            f.access_transient,
            f.primitive,
        );
    }
    let udts = report.count(lcm::core::taxonomy::TransmitterClass::UniversalData);
    println!("\nuniversal data transmitters: {udts}");
    assert!(udts >= 1, "the classic Spectre v1 UDT must be found");

    // Witness for the most severe finding (Clou outputs witness
    // executions in graph form, §5).
    let saeg = lcm::aeg::Saeg::build(&module, "victim", det.config().spec).expect("S-AEG");
    let worst = report
        .findings()
        .max_by_key(|f| f.class.severity_rank())
        .expect("has findings");
    println!("\n== Witness ==\n{}", describe(&saeg, worst));
    println!(
        "\n// Graphviz (pipe into `dot -Tpdf`):\n{}",
        witness_dot(&saeg, worst)
    );

    let (fixed, fences) = repair(&module, &det, EngineKind::Pht);
    println!("\n== Repair ==\ninserted {fences} fence(s)");
    let re = det.analyze_module(&fixed, EngineKind::Pht);
    println!(
        "re-analysis: {}",
        if re.is_clean() {
            "clean — leak mitigated"
        } else {
            "still leaking!"
        }
    );
    assert!(re.is_clean());
}
