//! The §6.2 scenario: audit crypto-library code with both engines,
//! including the `SSL_get_shared_sigalgs` gadget of Listing 1 — the most
//! severe vulnerability Clou uncovered.
//!
//! Run with: `cargo run --release --example crypto_audit`

use lcm::core::TransmitterClass;
use lcm::corpus::crypto;
use lcm::detect::{Detector, DetectorConfig, EngineKind};

fn main() {
    let det = Detector::new(DetectorConfig::default());
    println!(
        "{:<14} {:<10} {:>6} {:>6} {:>6} {:>6}  verdict",
        "bench", "engine", "DT", "CT", "UDT", "UCT"
    );
    println!("{}", "-".repeat(70));
    for bench in crypto::all_crypto() {
        let module = bench.module();
        for engine in [EngineKind::Pht, EngineKind::Stl] {
            let r = det.analyze_module(&module, engine);
            let (dt, ct, udt, uct) = (
                r.count(TransmitterClass::Data),
                r.count(TransmitterClass::Control),
                r.count(TransmitterClass::UniversalData),
                r.count(TransmitterClass::UniversalControl),
            );
            let verdict = if udt + uct > 0 {
                "UNIVERSAL LEAKAGE"
            } else if dt > 0 {
                "data leakage"
            } else if ct > 0 {
                "control leakage only"
            } else {
                "clean"
            };
            println!(
                "{:<14} {:<10} {:>6} {:>6} {:>6} {:>6}  {verdict}",
                bench.name,
                if engine == EngineKind::Pht {
                    "clou-pht"
                } else {
                    "clou-stl"
                },
                dt,
                ct,
                udt,
                uct
            );
        }
    }

    // Spotlight: the Listing 1 gadget.
    println!("\n== Listing 1: SSL_get_shared_sigalgs ==");
    let bench = crypto::sigalgs_gadget();
    let module = bench.module();
    let r = det.analyze_module(&module, EngineKind::Pht);
    for f in r.findings().filter(|f| f.class.is_universal()) {
        // Findings carry a compact seed; the path materializes on demand.
        let saeg = lcm::aeg::Saeg::build(&module, &f.function, det.config().spec)
            .expect("S-AEG for reported function");
        println!(
            "  {} {} at inst %{} — speculative out-of-bounds pointer load, \
             dereferenced transiently (witness path: {} blocks)",
            f.function,
            f.class,
            f.transmitter_inst.0,
            f.witness_path(&saeg).len()
        );
    }
    assert!(
        r.count(TransmitterClass::UniversalData) >= 1,
        "the sigalgs UDT must be detected"
    );
}
